package nma

// Event-driven engine equivalence suite (DESIGN §6b): the idle
// fast-forward must be invisible at every observable surface — Stats,
// process-wide metrics, and flight-recorder dumps — across arbitrary
// submit/advance interleavings, and the pooled-op free list must hold
// Submit and advance at zero steady-state allocations.

import (
	"bytes"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"xfm/internal/dram"
	"xfm/internal/telemetry"
)

// engineRun drives one simulator through a deterministic random
// interleaving of submit bursts, AdvanceTo jumps (short and long), and
// single window steps, with the given fast-forward setting, and
// returns every observable surface: Stats, a registry snapshot, and
// the sim-time recording bytes.
func engineRun(t *testing.T, seed int64, ff bool) (Stats, telemetry.Snapshot, []byte) {
	t.Helper()
	reg := telemetry.DefaultRegistry()
	reg.ResetAll()
	SetFastForward(ff)
	defer SetFastForward(true)

	smp := telemetry.NewSampler(reg, 1<<14)
	smp.SetSimEvery(7) // off-power-of-two so samples straddle skip chunks
	smp.Reset()
	smp.SetEnabled(true)

	c := cfg32()
	c.QueueDepth = 64
	s := NewSim(c)
	s.SetSampler(smp)
	trefi := c.Timings.TREFI

	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 200; i++ {
		switch rng.Intn(4) {
		case 0: // submit burst near the sim's upcoming refresh groups
			n := 1 + rng.Intn(8)
			base := int(s.window % int64(s.groups))
			for j := 0; j < n; j++ {
				dst := rng.Intn(s.groups)
				if rng.Intn(2) == 0 {
					dst = -1
				}
				s.Submit(Request{
					ID:       int64(i*100 + j),
					Kind:     OpKind(rng.Intn(2)),
					SrcGroup: (base + rng.Intn(32)) % s.groups,
					DstGroup: dst,
					Arrive:   s.Now() - trefi,
				})
			}
		case 1: // short advance
			s.AdvanceTo(s.Now() + dram.Ps(rng.Intn(16))*trefi)
		case 2: // long idle jump (thousands of windows)
			s.AdvanceTo(s.Now() + dram.Ps(1024+rng.Intn(4096))*trefi)
		case 3: // single steps
			for j := rng.Intn(5); j > 0; j-- {
				s.StepWindow()
			}
		}
	}
	// Drain: two retention walks complete everything still in flight.
	s.AdvanceTo(s.Now() + 2*c.Timings.Retention)

	var buf bytes.Buffer
	if err := smp.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return s.Stats(), reg.Snapshot(), buf.Bytes()
}

// TestFastForwardEquivalence is the tentpole property test: N
// fast-forwarded windows are bit-identical to N stepped windows at
// every observable surface, across random interleavings.
func TestFastForwardEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		stStep, snapStep, dumpStep := engineRun(t, seed, false)
		stFF, snapFF, dumpFF := engineRun(t, seed, true)
		if stStep != stFF {
			t.Fatalf("seed %d: Stats diverge:\nstepped: %+v\nfastfwd: %+v", seed, stStep, stFF)
		}
		if !reflect.DeepEqual(snapStep, snapFF) {
			t.Fatalf("seed %d: metric snapshots diverge:\nstepped: %+v\nfastfwd: %+v", seed, snapStep, snapFF)
		}
		if !bytes.Equal(dumpStep, dumpFF) {
			a, err := telemetry.ReadDump(bytes.NewReader(dumpStep))
			if err != nil {
				t.Fatal(err)
			}
			b, err := telemetry.ReadDump(bytes.NewReader(dumpFF))
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range telemetry.DiffDumps(a, b) {
				t.Errorf("seed %d: %s", seed, d)
			}
			t.Fatalf("seed %d: recordings diverge", seed)
		}
	}
}

// TestRunWindowsFastForwardEquivalence replays the same arrival stream
// through RunWindows with fast-forward on and off: identical stats and
// identical window counts (n windows exactly).
func TestRunWindowsFastForwardEquivalence(t *testing.T) {
	run := func(ff bool) Stats {
		SetFastForward(ff)
		defer SetFastForward(true)
		c := cfg32()
		s := NewSim(c)
		s.SetSampler(nil)
		trefi := c.Timings.TREFI
		rng := rand.New(rand.NewSource(3))
		var at dram.Ps
		i := 0
		next := func() (Request, bool) {
			if i >= 300 {
				return Request{}, false
			}
			// Sparse arrivals: bursts separated by long idle gaps.
			if i%10 == 0 {
				at += dram.Ps(500+rng.Intn(2000)) * trefi
			} else {
				at += dram.Ps(rng.Intn(3)) * trefi
			}
			i++
			return Request{
				ID:       int64(i),
				Kind:     OpKind(rng.Intn(2)),
				SrcGroup: rng.Intn(8192),
				DstGroup: -1,
				Arrive:   at,
			}, true
		}
		s.RunWindows(120_000, next)
		return s.Stats()
	}
	stepped := run(false)
	fast := run(true)
	if stepped != fast {
		t.Fatalf("RunWindows diverges:\nstepped: %+v\nfastfwd: %+v", stepped, fast)
	}
	if fast.Windows != 120_000 {
		t.Fatalf("Windows = %d, want 120000", fast.Windows)
	}
}

// TestPendingOnlySkip pins the pending-only fast path: with engine
// runs in flight and nothing queued or completed, the skip must stop
// at the earliest doneAt window, not fly past it.
func TestPendingOnlySkip(t *testing.T) {
	c := cfg32()
	s := NewSim(c)
	s.SetSampler(nil)
	// Source at group 0, flexible destination: window 0 reads, the
	// engine finishes during window 1, window 1 writes back.
	s.Submit(Request{ID: 1, Kind: CompressOp, SrcGroup: 0, DstGroup: -1})
	s.StepWindow()
	if len(s.pending) != 1 || s.queuedCount != 0 || s.completedCount != 0 {
		t.Fatalf("setup: pending=%d queued=%d completed=%d", len(s.pending), s.queuedCount, s.completedCount)
	}
	s.AdvanceTo(s.Now() + 10_000*c.Timings.TREFI)
	st := s.Stats()
	if st.Completed != 1 || st.WriteCond != 1 {
		t.Fatalf("pending op not completed across skip: %+v", st)
	}
	// One stepped window plus the 10001 windows whose execution time
	// falls inside the AdvanceTo horizon.
	if st.Windows != 10_002 {
		t.Fatalf("Windows = %d, want 10002", st.Windows)
	}
	// Exactly two windows did work (the read and the write-back).
	if st.BusyWindows != 2 {
		t.Fatalf("BusyWindows = %d, want 2", st.BusyWindows)
	}
}

// TestSteadyStateZeroAllocs is the pooled-op regression gate: once the
// free list and container arrays are warm, a Submit + AdvanceTo cycle
// allocates nothing.
func TestSteadyStateZeroAllocs(t *testing.T) {
	c := cfg32()
	s := NewSim(c)
	s.SetSampler(nil)
	s.SetTracer(nil)
	trefi := c.Timings.TREFI
	cycle := func() {
		g := int(s.window % int64(s.groups))
		s.Submit(Request{Kind: CompressOp, SrcGroup: g, DstGroup: -1, Arrive: s.Now() - trefi})
		s.AdvanceTo(s.Now() + 4*trefi)
	}
	// Warm until every group bucket has backing capacity: each cycle
	// advances 5 windows (gcd(5, 8192) = 1), so 8192 cycles touch every
	// group at least once; run two laps for margin.
	for i := 0; i < 2*8192; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(1000, cycle); allocs != 0 {
		t.Fatalf("steady-state Submit+AdvanceTo allocs/op = %v, want 0", allocs)
	}
}

// TestOpPoolRecycling checks the generation-stamp reclaim: structs
// recycle through the free list, and stale references left in lazy
// buckets never resurrect a previous incarnation.
func TestOpPoolRecycling(t *testing.T) {
	c := cfg32()
	c.QueueDepth = 8
	s := NewSim(c)
	s.SetSampler(nil)
	for round := 0; round < 50; round++ {
		g := int(s.window % int64(s.groups))
		// Same source group twice: the random path may serve one of
		// them, leaving a tombstone in the group bucket.
		s.Submit(Request{ID: int64(2 * round), Kind: CompressOp, SrcGroup: g, DstGroup: -1})
		s.Submit(Request{ID: int64(2*round + 1), Kind: DecompressOp, SrcGroup: g, DstGroup: -1})
		s.AdvanceTo(s.Now() + 6*c.Timings.TREFI)
	}
	s.AdvanceTo(s.Now() + 2*c.Timings.Retention)
	st := s.Stats()
	if st.Completed != st.Submitted-st.Fallbacks {
		t.Fatalf("conservation broken across recycling: %+v", st)
	}
	if len(s.free) == 0 {
		t.Fatal("free list never populated")
	}
	// The pool should be bounded by peak in-flight ops, far below the
	// 100 submissions.
	if got := len(s.free); got > 20 {
		t.Errorf("pool grew to %d structs for ≤16 in-flight ops", got)
	}
}

// TestRecycledOpsRace runs independent sims concurrently (sharing the
// process-wide metrics, as ranks in different goroutines would) so the
// race detector sweeps the recycled-op path and the bulk metric adds.
func TestRecycledOpsRace(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			c := cfg32()
			c.QueueDepth = 32
			s := NewSim(c)
			s.SetSampler(nil)
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				g := int(s.window % int64(s.groups))
				s.Submit(Request{
					ID:       int64(i),
					Kind:     OpKind(rng.Intn(2)),
					SrcGroup: (g + rng.Intn(8)) % s.groups,
					DstGroup: -1,
					Arrive:   s.Now(),
				})
				s.AdvanceTo(s.Now() + dram.Ps(1+rng.Intn(64))*c.Timings.TREFI)
			}
		}(int64(w + 1))
	}
	wg.Wait()
}

// BenchmarkAdvanceIdle measures the event-driven engine's idle
// throughput: a 4-rank array fast-forwarding a 4096-window horizon per
// iteration. The stepped equivalent costs ~4096×4 StepWindow calls.
func BenchmarkAdvanceIdle(b *testing.B) {
	c := cfg32()
	a := NewArray(c, 4)
	now := a.Rank(0).Now()
	step := 4096 * c.Timings.TREFI
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += step
		a.AdvanceTo(now)
	}
}
