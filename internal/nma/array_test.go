package nma

import (
	"math/rand"
	"testing"
)

func TestArrayStagger(t *testing.T) {
	a := NewArray(cfg32(), 4)
	groups := a.Rank(0).Config().Device.RefreshGroups()
	gs := a.CurrentGroups()
	if len(gs) != 4 {
		t.Fatalf("ranks = %d", len(gs))
	}
	// Evenly staggered: offsets 0, 1/4, 2/4, 3/4 of the group space.
	for i, g := range gs {
		want := i * groups / 4
		if g != want {
			t.Errorf("rank %d at group %d, want %d", i, g, want)
		}
	}
	// Stagger persists across steps.
	a.StepAll()
	for i, g := range a.CurrentGroups() {
		want := (i*groups/4 + 1) % groups
		if g != want {
			t.Errorf("after step: rank %d at group %d, want %d", i, g, want)
		}
	}
}

func TestArrayRoundRobinSubmit(t *testing.T) {
	a := NewArray(cfg32(), 3)
	for i := 0; i < 9; i++ {
		a.Submit(-1, Request{Kind: CompressOp, SrcGroup: 0, DstGroup: -1})
	}
	for i := 0; i < 3; i++ {
		if got := a.Rank(i).Stats().Submitted; got != 3 {
			t.Errorf("rank %d received %d, want 3", i, got)
		}
	}
	if got := a.Stats().Submitted; got != 9 {
		t.Errorf("aggregate submitted = %d, want 9", got)
	}
}

func TestArrayExplicitRankAndPanic(t *testing.T) {
	a := NewArray(cfg32(), 2)
	a.Submit(1, Request{Kind: CompressOp, SrcGroup: 0, DstGroup: -1})
	if a.Rank(0).Stats().Submitted != 0 || a.Rank(1).Stats().Submitted != 1 {
		t.Error("explicit rank routing wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range rank did not panic")
		}
	}()
	a.Submit(5, Request{SrcGroup: 0, DstGroup: 0})
}

func TestArrayAdvanceCompletesWork(t *testing.T) {
	a := NewArray(cfg32(), 4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 40; i++ {
		a.Submit(-1, Request{
			ID: int64(i), Kind: OpKind(i % 2),
			SrcGroup: rng.Intn(8192), DstGroup: rng.Intn(8192),
		})
	}
	// Two retention walks complete everything.
	a.AdvanceTo(a.Rank(0).Now() + 2*a.Rank(0).Config().Timings.Retention)
	st := a.Stats()
	if st.Completed != 40 {
		t.Errorf("completed = %d, want 40", st.Completed)
	}
}

func TestArrayStaggerSmoothsService(t *testing.T) {
	// With staggered counters, a burst of requests targeting one group
	// is served sooner on *some* rank than with aligned counters.
	cfg := cfg32()
	aligned := make([]*Sim, 4)
	for i := range aligned {
		aligned[i] = NewSim(cfg)
	}
	staggered := NewArray(cfg, 4)
	// All requests target group 6000.
	wait := func(submit func(i int, r Request) bool, step func()) int {
		for i := 0; i < 4; i++ {
			submit(i, Request{Kind: CompressOp, SrcGroup: 6000, DstGroup: -1})
		}
		steps := 0
		for steps < 3*8192 {
			step()
			steps++
			done := int64(0)
			if staggeredDone := staggered.Stats().Completed; staggeredDone > 0 {
				done = staggeredDone
			}
			for _, s := range aligned {
				done += s.Stats().Completed
			}
			if done > 0 {
				return steps
			}
		}
		return steps
	}
	_ = wait
	// Simpler direct check: time until the first staggered rank's
	// window reaches group 6000 is at most groups/4 windows; for the
	// aligned set it is up to a full walk.
	groups := cfg.Device.RefreshGroups()
	minDist := groups
	for _, g := range staggered.CurrentGroups() {
		d := (6000 - g + groups) % groups
		if d < minDist {
			minDist = d
		}
	}
	if minDist > groups/4 {
		t.Errorf("staggered min distance to group 6000 = %d, want ≤ %d", minDist, groups/4)
	}
}

func TestArrayNeedsRanks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-rank array did not panic")
		}
	}()
	NewArray(cfg32(), 0)
}
