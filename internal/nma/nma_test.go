package nma

import (
	"math/rand"
	"testing"

	"xfm/internal/dram"
)

func cfg32() Config { return DefaultConfig(dram.Device32Gb) }

func TestConfigValidate(t *testing.T) {
	if err := cfg32().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg32()
	bad.SPMBytes = 0
	if bad.Validate() == nil {
		t.Error("zero SPM accepted")
	}
	bad = cfg32()
	bad.AccessesPerTRFC, bad.RandomPerTRFC = 0, 0
	if bad.Validate() == nil {
		t.Error("zero access budget accepted")
	}
	bad = cfg32()
	bad.CompressedBytes = bad.PageBytes + 1
	if bad.Validate() == nil {
		t.Error("compressed larger than page accepted")
	}
}

func TestDefaultConfigMatchesDevice(t *testing.T) {
	for _, dev := range dram.Table1Devices() {
		c := DefaultConfig(dev)
		if c.AccessesPerTRFC != dev.MaxConditionalPerTRFC {
			t.Errorf("%s: accesses/tRFC = %d, want %d", dev.Name, c.AccessesPerTRFC, dev.MaxConditionalPerTRFC)
		}
		if c.Timings.TRFC != dev.TRFC {
			t.Errorf("%s: tRFC not propagated", dev.Name)
		}
	}
}

func TestSubmitAndCompleteOneOp(t *testing.T) {
	s := NewSim(cfg32())
	// Source row in group 0, destination in group 1: read in window 0,
	// engine runs, write in window 1.
	ok := s.Submit(Request{ID: 1, Kind: CompressOp, SrcGroup: 0, DstGroup: 1})
	if !ok {
		t.Fatal("submit rejected")
	}
	s.StepWindow() // group 0: conditional read
	st := s.Stats()
	if st.ReadCond != 1 {
		t.Fatalf("after window 0: ReadCond = %d, want 1", st.ReadCond)
	}
	if s.SPMUsed() == 0 {
		t.Fatal("page not staged in SPM")
	}
	s.StepWindow() // group 1: conditional write-back
	st = s.Stats()
	if st.Completed != 1 || st.WriteCond != 1 {
		t.Fatalf("after window 1: %+v", st)
	}
	if s.SPMUsed() != 0 {
		t.Errorf("SPM not drained: %d", s.SPMUsed())
	}
}

func TestMinimumLatencyTwoTREFI(t *testing.T) {
	// Fig. 10: the minimum latency for an XFM operation is 2 × tREFI
	// (read in one window, write in a later one).
	s := NewSim(cfg32())
	s.Submit(Request{Kind: CompressOp, SrcGroup: 0, DstGroup: 1, Arrive: 0})
	s.StepWindow()
	s.StepWindow()
	st := s.Stats()
	if st.Completed != 1 {
		t.Fatal("op did not complete in two windows")
	}
	min := 2 * s.Config().Timings.TREFI
	if st.MaxLatencyPs < min {
		t.Errorf("latency %d < 2×tREFI %d", st.MaxLatencyPs, min)
	}
}

func TestConditionalRequiresGroupMatch(t *testing.T) {
	c := cfg32()
	c.RandomPerTRFC = 0 // force conditional-only
	s := NewSim(c)
	s.Submit(Request{Kind: CompressOp, SrcGroup: 5, DstGroup: 6})
	s.StepWindow() // group 0: nothing matches
	if s.Stats().Conditional != 0 {
		t.Fatal("access performed without group match")
	}
	for i := 1; i <= 5; i++ {
		s.StepWindow()
	}
	if s.Stats().ReadCond != 1 {
		t.Fatalf("read not performed at its group window: %+v", s.Stats())
	}
	s.StepWindow() // group 6: write
	if s.Stats().Completed != 1 {
		t.Fatalf("write not performed at its group window: %+v", s.Stats())
	}
}

func TestRandomAccessServesMismatchedGroupsUnderPressure(t *testing.T) {
	c := cfg32()
	c.RandomPerTRFC = 1
	c.QueueDepth = 1 // a single queued op already means queue pressure
	s := NewSim(c)
	// Source group far in the future: only a random access can serve
	// it soon, and the full queue forces the scheduler to spend one.
	s.Submit(Request{Kind: CompressOp, SrcGroup: 4000, DstGroup: 4001})
	s.StepWindow()
	st := s.Stats()
	if st.ReadRand != 1 {
		t.Fatalf("random read not used: %+v", st)
	}
}

func TestRandomAccessNotWastedWithoutPressure(t *testing.T) {
	c := cfg32()
	s := NewSim(c)
	// One op, deep queue, no SPM pressure: the scheduler should hold
	// the request for its conditional window instead of burning an
	// activation on a random access.
	s.Submit(Request{Kind: CompressOp, SrcGroup: 4000, DstGroup: -1})
	for i := 0; i < 100; i++ {
		s.StepWindow()
	}
	if got := s.Stats().Random; got != 0 {
		t.Errorf("random accesses = %d, want 0 at idle", got)
	}
	// When its group finally comes up the read must be conditional.
	for s.Stats().Completed == 0 && s.Now() < 2*c.Timings.Retention {
		s.StepWindow()
	}
	st := s.Stats()
	if st.ReadCond != 1 || st.Completed != 1 {
		t.Fatalf("op not served conditionally: %+v", st)
	}
}

func TestFlexibleDestinationWritesConditional(t *testing.T) {
	c := cfg32()
	c.RandomPerTRFC = 0
	s := NewSim(c)
	s.Submit(Request{Kind: CompressOp, SrcGroup: 0, DstGroup: -1})
	s.StepWindow() // read
	s.StepWindow() // flexible write counts as conditional
	st := s.Stats()
	if st.Completed != 1 || st.WriteCond != 1 {
		t.Fatalf("flexible-destination write failed: %+v", st)
	}
}

func TestQueueFullFallsBack(t *testing.T) {
	c := cfg32()
	c.QueueDepth = 4
	s := NewSim(c)
	accepted := 0
	for i := 0; i < 10; i++ {
		if s.Submit(Request{Kind: CompressOp, SrcGroup: 100, DstGroup: 101}) {
			accepted++
		}
	}
	st := s.Stats()
	if accepted != 4 {
		t.Errorf("accepted %d, want 4", accepted)
	}
	if st.Fallbacks != 6 {
		t.Errorf("fallbacks = %d, want 6", st.Fallbacks)
	}
	if st.Submitted != 10 {
		t.Errorf("submitted = %d, want 10", st.Submitted)
	}
}

func TestSPMPressureBlocksReads(t *testing.T) {
	c := cfg32()
	c.SPMBytes = 2 * c.PageBytes // room for only 2 staged pages
	c.RandomPerTRFC = 0
	s := NewSim(c)
	// All sources in group 0, destinations far away: reads pile up in
	// the SPM and cannot drain.
	for i := 0; i < 4; i++ {
		s.Submit(Request{Kind: CompressOp, SrcGroup: 0, DstGroup: 4000})
	}
	s.StepWindow() // group 0: budget is 4 conditional, SPM fits 2
	if got := s.SPMUsed(); got > c.SPMBytes {
		t.Fatalf("SPM overcommitted: %d > %d", got, c.SPMBytes)
	}
	if s.Stats().ReadCond != 2 {
		t.Errorf("reads performed = %d, want 2 (SPM-limited)", s.Stats().ReadCond)
	}
	if s.QueueLen() != 2 {
		t.Errorf("queue length = %d, want 2", s.QueueLen())
	}
}

func TestAccessBudgetPerWindowRespected(t *testing.T) {
	c := cfg32() // 4 conditional + 1 random
	s := NewSim(c)
	for i := 0; i < 50; i++ {
		s.Submit(Request{Kind: CompressOp, SrcGroup: 0, DstGroup: -1})
	}
	s.StepWindow()
	st := s.Stats()
	total := st.Conditional + st.Random
	if total > int64(c.AccessesPerTRFC+c.RandomPerTRFC) {
		t.Errorf("window performed %d accesses, budget %d",
			total, c.AccessesPerTRFC+c.RandomPerTRFC)
	}
}

func TestLargerSPMReducesFallbacks(t *testing.T) {
	// The Fig. 12 mechanism: with a fixed workload, growing SPM
	// monotonically (weakly) reduces fallbacks.
	run := func(spmMB int) float64 {
		c := cfg32()
		c.SPMBytes = spmMB << 20
		c.QueueDepth = 256
		s := NewSim(c)
		rng := rand.New(rand.NewSource(1))
		treFI := c.Timings.TREFI
		id := int64(0)
		next := func() (Request, bool) {
			id++
			if id > 40000 {
				return Request{}, false
			}
			return Request{
				ID:       id,
				Kind:     OpKind(rng.Intn(2)),
				SrcGroup: rng.Intn(8192),
				DstGroup: rng.Intn(8192),
				Arrive:   dram.Ps(id) * treFI / 2, // 2 requests per window
			}, true
		}
		s.RunWindows(30000, next)
		return s.Stats().FallbackRate()
	}
	f1 := run(1)
	f8 := run(8)
	if f8 > f1 {
		t.Errorf("fallback rate grew with SPM: 1MB=%.3f 8MB=%.3f", f1, f8)
	}
	if f1 == 0 {
		t.Errorf("1MB SPM under overload should produce fallbacks")
	}
}

func TestMoreAccessesPerTRFCReducesFallbacks(t *testing.T) {
	run := func(acc int) float64 {
		c := cfg32()
		c.AccessesPerTRFC = acc
		c.SPMBytes = 8 << 20
		c.QueueDepth = 512
		s := NewSim(c)
		rng := rand.New(rand.NewSource(2))
		id := int64(0)
		next := func() (Request, bool) {
			id++
			if id > 30000 {
				return Request{}, false
			}
			return Request{
				ID:       id,
				Kind:     CompressOp,
				SrcGroup: rng.Intn(8192),
				DstGroup: rng.Intn(8192),
				Arrive:   dram.Ps(id) * c.Timings.TREFI * 2 / 3,
			}, true
		}
		s.RunWindows(50000, next)
		return s.Stats().FallbackRate()
	}
	f1 := run(1)
	f3 := run(3)
	if f3 > f1 {
		t.Errorf("fallback rate grew with access budget: 1=%.3f 3=%.3f", f1, f3)
	}
}

func TestConditionalFractionDominatesAtLowLoad(t *testing.T) {
	// §8: "the majority of accesses can be accommodated with
	// conditional accesses" at realistic promotion rates.
	c := cfg32()
	s := NewSim(c)
	rng := rand.New(rand.NewSource(3))
	id := int64(0)
	next := func() (Request, bool) {
		id++
		if id > 2000 {
			return Request{}, false
		}
		return Request{
			ID:       id,
			Kind:     CompressOp,
			SrcGroup: rng.Intn(8192),
			DstGroup: rng.Intn(8192),
			Arrive:   dram.Ps(id) * c.Timings.TREFI * 10, // light load
		}, true
	}
	s.RunWindows(40000, next)
	st := s.Stats()
	if st.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if frac := st.ConditionalFraction(); frac < 0.5 {
		t.Errorf("conditional fraction = %.2f, want > 0.5 at light load", frac)
	}
}

func TestStatsAccessorsEmpty(t *testing.T) {
	var st Stats
	if st.FallbackRate() != 0 || st.ConditionalFraction() != 0 || st.MeanLatencyMs() != 0 {
		t.Error("zero stats should report zeros")
	}
}

func TestRunWindowsArrivalOrdering(t *testing.T) {
	c := cfg32()
	s := NewSim(c)
	reqs := []Request{
		{ID: 1, Kind: CompressOp, SrcGroup: 0, DstGroup: -1, Arrive: 0},
		{ID: 2, Kind: CompressOp, SrcGroup: 1, DstGroup: -1, Arrive: c.Timings.TREFI},
	}
	i := 0
	next := func() (Request, bool) {
		if i >= len(reqs) {
			return Request{}, false
		}
		r := reqs[i]
		i++
		return r, true
	}
	s.RunWindows(5, next)
	if got := s.Stats().Submitted; got != 2 {
		t.Errorf("submitted = %d, want 2", got)
	}
	if got := s.Stats().Completed; got != 2 {
		t.Errorf("completed = %d, want 2", got)
	}
}

func TestSubmitPanicsOnBadGroup(t *testing.T) {
	s := NewSim(cfg32())
	for _, r := range []Request{
		{SrcGroup: -1, DstGroup: 0},
		{SrcGroup: 0, DstGroup: 8192},
		{SrcGroup: 8192, DstGroup: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Submit(%+v) did not panic", r)
				}
			}()
			s.Submit(r)
		}()
	}
}

// TestConservation: every submitted request either falls back or is
// eventually completed once enough windows pass; SPM ends empty.
func TestConservation(t *testing.T) {
	c := cfg32()
	c.QueueDepth = 128
	s := NewSim(c)
	rng := rand.New(rand.NewSource(9))
	var accepted int64
	for i := 0; i < 500; i++ {
		r := Request{
			ID:       int64(i),
			Kind:     OpKind(rng.Intn(2)),
			SrcGroup: rng.Intn(8192),
			DstGroup: rng.Intn(8192),
		}
		if s.Submit(r) {
			accepted++
		}
	}
	// Two full retention walks guarantee every group comes up twice.
	for i := 0; i < 2*8192; i++ {
		s.StepWindow()
	}
	st := s.Stats()
	if st.Completed != accepted {
		t.Errorf("completed %d of %d accepted", st.Completed, accepted)
	}
	if s.SPMUsed() != 0 {
		t.Errorf("SPM not empty at quiescence: %d", s.SPMUsed())
	}
	if s.QueueLen() != 0 {
		t.Errorf("queue not empty at quiescence: %d", s.QueueLen())
	}
	if st.Submitted != 500 {
		t.Errorf("submitted = %d, want 500", st.Submitted)
	}
	if st.Fallbacks != 500-accepted {
		t.Errorf("fallbacks = %d, want %d", st.Fallbacks, 500-accepted)
	}
}

func BenchmarkStepWindow(b *testing.B) {
	c := cfg32()
	s := NewSim(c)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		if s.QueueLen() < c.QueueDepth {
			s.Submit(Request{
				Kind:     CompressOp,
				SrcGroup: rng.Intn(8192),
				DstGroup: rng.Intn(8192),
			})
		}
		s.StepWindow()
	}
}

func TestBusyWindowAndSlotUtilization(t *testing.T) {
	c := cfg32()
	s := NewSim(c)
	// Two requests with flexible destinations at group 0: window 0
	// reads both (cond budget 4), window 1 writes both.
	s.Submit(Request{Kind: CompressOp, SrcGroup: 0, DstGroup: -1})
	s.Submit(Request{Kind: CompressOp, SrcGroup: 0, DstGroup: -1})
	s.StepWindow()
	s.StepWindow()
	s.StepWindow() // idle
	st := s.Stats()
	if st.BusyWindows != 2 {
		t.Errorf("busy windows = %d, want 2", st.BusyWindows)
	}
	if got := st.BusyWindowFraction(); got < 0.6 || got > 0.7 {
		t.Errorf("busy fraction = %v, want 2/3", got)
	}
	slots := c.AccessesPerTRFC + c.RandomPerTRFC
	if got := st.SlotUtilization(slots); got <= 0 || got > 1 {
		t.Errorf("slot utilization = %v", got)
	}
	if (Stats{}).BusyWindowFraction() != 0 || (Stats{}).SlotUtilization(5) != 0 {
		t.Error("empty stats should report zero")
	}
}
