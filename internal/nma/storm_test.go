package nma

// Refresh-storm injection suite: storms must starve the side channel
// (RogueRFM's denial-of-service shape) while preserving the FF ≡
// stepped invariant — a fast-forwarded run over a storm schedule must
// publish bit-identical stats, metrics, and recordings.

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"xfm/internal/dram"
	"xfm/internal/fault"
	"xfm/internal/telemetry"
)

// stormRun mirrors engineRun with a storm-scheduling injector armed.
func stormRun(t *testing.T, seed int64, ff bool, storm fault.StormSpec) (Stats, telemetry.Snapshot, []byte) {
	t.Helper()
	reg := telemetry.DefaultRegistry()
	reg.ResetAll()
	SetFastForward(ff)
	defer SetFastForward(true)

	smp := telemetry.NewSampler(reg, 1<<14)
	smp.SetSimEvery(7)
	smp.Reset()
	smp.SetEnabled(true)

	c := cfg32()
	c.QueueDepth = 64
	s := NewSim(c)
	s.SetSampler(smp)
	s.SetInjector(fault.NewInjector(fault.Plan{Seed: seed, Storm: storm}))
	trefi := c.Timings.TREFI

	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 120; i++ {
		switch rng.Intn(4) {
		case 0:
			n := 1 + rng.Intn(8)
			base := int(s.window % int64(s.groups))
			for j := 0; j < n; j++ {
				dst := rng.Intn(s.groups)
				if rng.Intn(2) == 0 {
					dst = -1
				}
				s.Submit(Request{
					ID:       int64(i*100 + j),
					Kind:     OpKind(rng.Intn(2)),
					SrcGroup: (base + rng.Intn(32)) % s.groups,
					DstGroup: dst,
					Arrive:   s.Now() - trefi,
				})
			}
		case 1:
			s.AdvanceTo(s.Now() + dram.Ps(rng.Intn(16))*trefi)
		case 2:
			s.AdvanceTo(s.Now() + dram.Ps(1024+rng.Intn(4096))*trefi)
		case 3:
			for j := rng.Intn(5); j > 0; j-- {
				s.StepWindow()
			}
		}
	}
	s.AdvanceTo(s.Now() + 2*c.Timings.Retention)

	var buf bytes.Buffer
	if err := smp.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return s.Stats(), reg.Snapshot(), buf.Bytes()
}

// TestStormFastForwardEquivalence extends the §6b equivalence property
// to storm schedules: skipped idle ranges must account storm windows
// (and their zeroed slot offers) exactly like stepped ones.
func TestStormFastForwardEquivalence(t *testing.T) {
	storms := []fault.StormSpec{
		{Period: 512, Len: 64},
		{Period: 777, Len: 123, Phase: 300},
		{Period: 64, Len: 64}, // permanent storm
	}
	for _, storm := range storms {
		for seed := int64(1); seed <= 4; seed++ {
			stStep, snapStep, dumpStep := stormRun(t, seed, false, storm)
			stFF, snapFF, dumpFF := stormRun(t, seed, true, storm)
			if stStep != stFF {
				t.Fatalf("storm %+v seed %d: Stats diverge:\nstepped: %+v\nfastfwd: %+v", storm, seed, stStep, stFF)
			}
			if !reflect.DeepEqual(snapStep, snapFF) {
				t.Fatalf("storm %+v seed %d: metric snapshots diverge", storm, seed)
			}
			if !bytes.Equal(dumpStep, dumpFF) {
				a, err := telemetry.ReadDump(bytes.NewReader(dumpStep))
				if err != nil {
					t.Fatal(err)
				}
				b, err := telemetry.ReadDump(bytes.NewReader(dumpFF))
				if err != nil {
					t.Fatal(err)
				}
				for _, d := range telemetry.DiffDumps(a, b) {
					t.Errorf("storm %+v seed %d: %s", storm, seed, d)
				}
				t.Fatalf("storm %+v seed %d: recordings diverge", storm, seed)
			}
			if stStep.StormWindows == 0 {
				t.Fatalf("storm %+v seed %d: no storm windows counted", storm, seed)
			}
		}
	}
}

// TestStormStarvesSideChannel pins the starvation semantics: under a
// permanent storm no access slots are offered, so queued work ages
// without ever being served.
func TestStormStarvesSideChannel(t *testing.T) {
	c := cfg32()
	s := NewSim(c)
	s.SetSampler(nil)
	s.SetInjector(fault.NewInjector(fault.Plan{Seed: 1, Storm: fault.StormSpec{Period: 1, Len: 1}}))
	for i := 0; i < 8; i++ {
		if !s.Submit(Request{ID: int64(i), Kind: CompressOp, SrcGroup: i, DstGroup: -1, Arrive: 0}) {
			t.Fatalf("submit %d rejected", i)
		}
	}
	for w := 0; w < 2000; w++ {
		s.StepWindow()
	}
	st := s.Stats()
	if st.Conditional+st.Random != 0 {
		t.Fatalf("permanent storm served %d accesses", st.Conditional+st.Random)
	}
	if st.StormWindows != 2000 || st.Windows != 2000 {
		t.Fatalf("storm windows = %d / %d", st.StormWindows, st.Windows)
	}
	if st.BusyWindows != 0 || st.Completed != 0 {
		t.Fatalf("storm windows carried work: busy=%d completed=%d", st.BusyWindows, st.Completed)
	}
	if s.QueueLen() != 8 {
		t.Fatalf("queue drained under permanent storm: %d", s.QueueLen())
	}
}
