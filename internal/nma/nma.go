// Package nma models XFM's near-memory accelerator (§5–§6 of the
// paper): a (de)compression engine in the DIMM buffer device that
// accesses DRAM only during all-bank refresh windows (tRFC), batching
// the requests that arrive during each refresh interval (tREFI).
//
// Accesses are classified as conditional — the target row belongs to
// the refresh group being refreshed in the current window, so the row
// is already activated and can be streamed out at no extra activation
// cost — or random — the row is in a different subarray and is
// accessed in parallel with the ongoing refresh using the Fig. 7 bank
// extension, limited to one per tRFC in the paper's methodology (§7).
//
// Pages read from DRAM are staged in the ScratchPad Memory (SPM) with
// a PENDING tag, marked COMPLETED when the accelerator finishes, and
// written back to DRAM in a subsequent window (Fig. 10). When the SPM
// or the Compress_Request_Queue fills, back-pressure reaches the
// XFM driver, which falls back to the CPU (§6).
//
// The simulator is event-driven (DESIGN §6b): windows in which the
// NMA provably performs no access are fast-forwarded in O(1) instead
// of stepped one tREFI at a time, with bulk counter updates chunked so
// Stats, telemetry, and flight-recorder samples stay bit-identical to
// a stepped run.
package nma

import (
	"fmt"
	"sync/atomic"

	"xfm/internal/dram"
	"xfm/internal/fault"
	"xfm/internal/telemetry"
)

// OpKind is the type of an offload operation.
type OpKind int

// Offload operation kinds.
const (
	CompressOp OpKind = iota
	DecompressOp
)

func (k OpKind) String() string {
	if k == CompressOp {
		return "compress"
	}
	return "decompress"
}

// Request is one page offload submitted to the NMA.
type Request struct {
	ID   int64
	Kind OpKind
	// SrcGroup is the refresh group of the DRAM row(s) holding the
	// source page; the read access is conditional exactly when the
	// current window refreshes this group.
	SrcGroup int
	// DstGroup is the refresh group of the destination row(s).
	DstGroup int
	// Arrive is the submission time.
	Arrive dram.Ps
}

// Config parameterizes the NMA model.
type Config struct {
	Device  dram.DeviceConfig
	Timings dram.Timings

	// SPMBytes is the ScratchPad Memory capacity (Fig. 12 sweeps 1,
	// 2, 4, 8 MB).
	SPMBytes int
	// AccessesPerTRFC is the number of conditional page accesses that
	// fit in one refresh window (Fig. 6: ≤ 4/3/2 for 32/16/8 Gb).
	AccessesPerTRFC int
	// RandomPerTRFC is the number of random accesses per window (§7:
	// "assume that only one random access can be performed during a
	// tRFC").
	RandomPerTRFC int
	// QueueDepth is the Compress_Request_Queue capacity in entries.
	QueueDepth int

	// PageBytes is the offload granularity (4 KiB).
	PageBytes int
	// CompressedBytes is the average compressed page size staged in
	// the SPM after compression (PageBytes / compression ratio).
	CompressedBytes int

	// CompressGBps and DecompressGBps are the accelerator engine
	// throughputs (the AxDIMM prototype: 14.8 and 17.2 GB/s; §7).
	CompressGBps   float64
	DecompressGBps float64
}

// DefaultConfig returns the paper's evaluation configuration for the
// given device: 2 MB SPM (the prototype's), device-specific access
// budget, one random access per window, 4 KiB pages at 2× ratio.
func DefaultConfig(dev dram.DeviceConfig) Config {
	return Config{
		Device:          dev,
		Timings:         dram.DDR5_3200().WithTRFC(dev.TRFC),
		SPMBytes:        2 << 20,
		AccessesPerTRFC: dev.MaxConditionalPerTRFC,
		RandomPerTRFC:   1,
		QueueDepth:      4096,
		PageBytes:       4096,
		CompressedBytes: 2048,
		CompressGBps:    14.8,
		DecompressGBps:  17.2,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SPMBytes <= 0 || c.PageBytes <= 0 || c.QueueDepth <= 0 {
		return fmt.Errorf("nma: non-positive capacity in %+v", c)
	}
	if c.AccessesPerTRFC < 0 || c.RandomPerTRFC < 0 {
		return fmt.Errorf("nma: negative access budget")
	}
	if c.AccessesPerTRFC+c.RandomPerTRFC == 0 {
		return fmt.Errorf("nma: zero total access budget")
	}
	if c.CompressedBytes <= 0 || c.CompressedBytes > c.PageBytes {
		return fmt.Errorf("nma: compressed size %d outside (0, %d]", c.CompressedBytes, c.PageBytes)
	}
	if c.CompressGBps <= 0 || c.DecompressGBps <= 0 {
		return fmt.Errorf("nma: non-positive engine throughput")
	}
	return c.Device.Validate()
}

// fastForwardEnabled gates the idle fast-forward globally. It exists
// so the equivalence of the event-driven engine to brute window
// stepping can be *demonstrated*, not just trusted: `xfmbench
// -nma-stepped` records a run with it off and `telemetryck -diff`
// proves the recording bit-identical to a fast-forwarded one.
var fastForwardDisabled atomic.Bool

// SetFastForward enables (the default) or disables the idle
// fast-forward for every Sim in the process. With it off the engine
// steps each refresh window individually, reproducing the pre-
// event-driven behavior exactly; observable results are identical
// either way, only the wall-clock cost differs.
func SetFastForward(on bool) { fastForwardDisabled.Store(!on) }

// opState tracks one in-flight operation inside the NMA.
type opState int

const (
	opQueued    opState = iota // in Compress_Request_Queue, not yet read
	opPending                  // page in SPM, engine running (PENDING tag)
	opCompleted                // engine done (COMPLETED tag), awaiting write-back
	opDone                     // written back to DRAM
)

type op struct {
	req   Request
	state opState
	// gen is the op's incarnation, bumped when the op is recycled into
	// the free list. References left behind in lazily-compacted FIFOs
	// and buckets carry the gen at insertion time; a mismatch marks the
	// reference stale even after the struct is reused for a new request.
	gen       uint64
	readAt    dram.Ps // when the page was read into the SPM
	doneAt    dram.Ps // when the engine finishes
	wroteAt   dram.Ps
	spmBytes  int // SPM bytes charged while resident
	readRand  bool
	writeRand bool
}

// opRef is one container entry: the op plus the incarnation it had
// when inserted. live() distinguishes a current reference from a
// tombstone left by a lazy removal or a recycled struct.
type opRef struct {
	o   *op
	gen uint64
}

func (r opRef) live(want opState) bool {
	return r.gen == r.o.gen && r.o.state == want
}

// refFIFO is a head-indexed FIFO of op references. Pops advance the
// head instead of re-slicing so the backing array keeps its capacity;
// once the dead prefix dominates, the live tail is copied down in
// place. Steady-state pushes are therefore allocation-free — the
// structure behind both the request queue and every group bucket.
type refFIFO struct {
	refs []opRef
	head int
}

func (f *refFIFO) push(r opRef) { f.refs = append(f.refs, r) }

func (f *refFIFO) empty() bool { return f.head >= len(f.refs) }

func (f *refFIFO) peek() opRef { return f.refs[f.head] }

// pop drops the head entry and compacts the dead prefix when it is
// both large and the majority of the slice (amortized O(1), in place).
func (f *refFIFO) pop() {
	f.head++
	if f.head >= len(f.refs) {
		f.refs = f.refs[:0]
		f.head = 0
		return
	}
	if f.head > 64 && f.head > len(f.refs)/2 {
		n := copy(f.refs, f.refs[f.head:])
		f.refs = f.refs[:n]
		f.head = 0
	}
}

// Stats aggregates simulation results; it maps to Fig. 12's panels.
type Stats struct {
	Submitted   int64
	Fallbacks   int64 // requests the driver redirected to the CPU
	Completed   int64
	Conditional int64 // conditional accesses performed (reads + write-backs)
	Random      int64 // random accesses performed
	ReadCond    int64
	ReadRand    int64
	WriteCond   int64
	WriteRand   int64

	MaxSPMOccupancy int
	SumLatencyPs    dram.Ps
	MaxLatencyPs    dram.Ps
	Windows         int64
	// BusyWindows counts refresh windows in which the NMA performed at
	// least one access — §5: "refresh cycles are no longer wasted
	// since useful computation occurs within the DRAM rank during an
	// all-bank refresh".
	BusyWindows int64
	// StormWindows counts refresh windows starved by an injected
	// refresh storm (the RogueRFM denial-of-service shape): refresh
	// management owned the DRAM and the NMA was offered zero slots.
	StormWindows int64
}

// FallbackRate returns fallbacks / submitted.
func (s Stats) FallbackRate() float64 {
	if s.Submitted == 0 {
		return 0
	}
	return float64(s.Fallbacks) / float64(s.Submitted)
}

// ConditionalFraction returns the share of NMA accesses that were
// conditional (the paper reports the majority are, enabling the 10.1%
// access-energy saving).
func (s Stats) ConditionalFraction() float64 {
	tot := s.Conditional + s.Random
	if tot == 0 {
		return 0
	}
	return float64(s.Conditional) / float64(tot)
}

// BusyWindowFraction returns the share of refresh windows that
// carried NMA work.
func (s Stats) BusyWindowFraction() float64 {
	if s.Windows == 0 {
		return 0
	}
	return float64(s.BusyWindows) / float64(s.Windows)
}

// SlotUtilization returns performed accesses over offered access slots
// (conditional budget + random slot per window): how much of the side
// channel the workload consumed.
func (s Stats) SlotUtilization(slotsPerWindow int) float64 {
	if s.Windows == 0 || slotsPerWindow <= 0 {
		return 0
	}
	return float64(s.Conditional+s.Random) / float64(s.Windows*int64(slotsPerWindow))
}

// MeanLatencyMs returns the mean offload completion latency in ms.
func (s Stats) MeanLatencyMs() float64 {
	if s.Completed == 0 {
		return 0
	}
	return float64(s.SumLatencyPs) / float64(s.Completed) / float64(dram.Millisecond)
}

// Sim is the per-rank NMA simulator. It advances refresh window by
// refresh window, ingesting requests and scheduling conditional and
// random accesses.
//
// Internally the queue and the completed set are indexed by refresh
// group so each window's conditional matching costs O(budget), not
// O(queue), and the group index is a flat slice (one bucket per
// refresh group) so the hot loop performs no map hashing. Windows in
// which no op is queued, completing, or awaiting write-back are
// fast-forwarded in bulk — the Fig. 12 sensitivity sweeps run tens of
// thousands of windows per configuration, most of them idle.
type Sim struct {
	cfg    Config
	groups int
	// slotsPerWin and bulkAdvance are fixed at construction so the
	// idle fast-forward performs no per-call closure allocation.
	slotsPerWin int64
	bulkAdvance func(k int64)

	window  int64   // next window index
	queued  refFIFO // Compress_Request_Queue FIFO (reads not yet done)
	spmUsed int

	// queuedByGroup buckets queued ops by SrcGroup; completedByGroup
	// buckets COMPLETED ops by DstGroup (the extra trailing bucket
	// holds flexible destinations, key -1). Entries are removed
	// lazily: an op may linger in a bucket or FIFO after being served
	// and is skipped on pop via its generation stamp.
	queuedByGroup    []refFIFO
	completedByGroup []refFIFO
	completedFIFO    refFIFO
	pending          []*op // PENDING ops awaiting engine completion
	queuedCount      int   // live (unserved) queue entries
	completedCount   int   // live COMPLETED ops awaiting write-back

	// free recycles op structs once they are written back: every
	// container reference is tombstoned by the generation bump, so the
	// struct can back a future Submit without allocation.
	free []*op

	stats Stats

	// Span tracing (off unless the tracer is enabled): each busy window
	// becomes a "refresh-window" span on this sim's track with one
	// nested compress/decompress span per access performed inside it.
	tracer  *telemetry.Tracer
	track   int  // lazily allocated track id, -1 until first span
	traceOn bool // cached tracer.Enabled() for the current window
	winAcc  []windowAccess

	// Flight recorder (off unless the sampler is enabled): StepWindow
	// ticks the simulated-time clock domain so every Nth refresh window
	// snapshots the registry into time series. The disabled fast path
	// is one atomic load; fast-forwarded ranges tick in bulk through
	// Sampler.SimTickRange, which lands samples on exactly the same
	// timestamps with exactly the same counter values.
	sampler *telemetry.Sampler

	// Fault injection (nil unless a chaos plan is armed): the injector
	// schedules refresh-storm windows in which refresh management owns
	// the DRAM and the side channel offers zero access slots. All
	// injector methods are nil-safe, so the default path pays one nil
	// check per window.
	inj *fault.Injector
}

// windowAccess remembers one access performed in the current window so
// its span can be laid out once the window's accesses are known.
type windowAccess struct {
	o      *op
	random bool
	write  bool
}

// NewSim builds a simulator; it panics on invalid configuration, which
// indicates a programming error in the experiment harness.
func NewSim(cfg Config) *Sim {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	groups := cfg.Device.RefreshGroups()
	s := &Sim{
		cfg:              cfg,
		groups:           groups,
		slotsPerWin:      int64(cfg.AccessesPerTRFC + cfg.RandomPerTRFC),
		queuedByGroup:    make([]refFIFO, groups),
		completedByGroup: make([]refFIFO, groups+1),
		tracer:           telemetry.DefaultTracer(),
		track:            -1,
		// SimSampler is the default recorder itself in single-sim runs
		// and a private per-sim child when fan-out is on (xfmbench -j),
		// so parallel sims stop losing samples to first-writer-wins.
		sampler: telemetry.DefaultSampler().SimSampler(),
	}
	s.bulkAdvance = s.advanceIdle
	return s
}

// SetTracer redirects span output to tr (nil disables tracing for this
// sim); tests inject private tracers here. Sims default to the
// process-wide telemetry.DefaultTracer.
func (s *Sim) SetTracer(tr *telemetry.Tracer) {
	s.tracer = tr
	s.track = -1
}

// SetSampler redirects flight-recorder clock ticks to smp (nil
// disconnects this sim from the recorder); tests inject private
// samplers here. Sims default to telemetry.DefaultSampler.
func (s *Sim) SetSampler(smp *telemetry.Sampler) { s.sampler = smp }

// SetInjector arms fault injection on this sim (nil disarms): the
// injector's storm schedule starves refresh windows of access slots.
func (s *Sim) SetInjector(in *fault.Injector) { s.inj = in }

// Config returns the simulator's configuration.
func (s *Sim) Config() Config { return s.cfg }

// Stats returns the accumulated statistics.
func (s *Sim) Stats() Stats { return s.stats }

// Now returns the execution time of the next refresh window: requests
// arriving during interval k are batched and executed during the tRFC
// at the end of the interval (Fig. 10), i.e. at (k+1) × tREFI.
func (s *Sim) Now() dram.Ps { return (s.window + 1) * s.cfg.Timings.TREFI }

// SPMUsed returns the current SPM occupancy in bytes.
func (s *Sim) SPMUsed() int { return s.spmUsed }

// QueueLen returns the current Compress_Request_Queue depth.
func (s *Sim) QueueLen() int { return s.queuedCount }

// completedBucket maps a destination group key to its bucket index
// (key -1, a flexible destination, lives in the trailing bucket).
func (s *Sim) completedBucket(key int) *refFIFO {
	if key < 0 {
		return &s.completedByGroup[s.groups]
	}
	return &s.completedByGroup[key]
}

// newOp takes an op from the free list (or allocates the pool's next
// struct) and initializes it for req. The recycled struct keeps its
// bumped generation so references from its previous life stay stale.
func (s *Sim) newOp(req Request) *op {
	if n := len(s.free); n > 0 {
		o := s.free[n-1]
		s.free = s.free[:n-1]
		*o = op{gen: o.gen, req: req}
		return o
	}
	return &op{req: req}
}

// Submit offers a request to the NMA. It returns false when the
// request was rejected and the driver must fall back to the CPU.
// Back-pressure propagates exactly as §6 describes: a full SPM stalls
// reads, stalled reads fill the Compress_Request_Queue, and a full
// queue triggers CPU_Fallback. Steady-state Submit performs no heap
// allocation: op structs recycle through the free list and every
// container reuses its backing array.
func (s *Sim) Submit(req Request) bool {
	s.stats.Submitted++
	mSubmitted.Inc()
	if req.SrcGroup < 0 || req.SrcGroup >= s.groups || req.DstGroup < -1 || req.DstGroup >= s.groups {
		panic(fmt.Sprintf("nma: refresh group out of range in %+v", req)) //xfm:ignore hotpath-alloc panic guard on malformed request; Sprintf runs only when panicking
	}
	if s.queuedCount >= s.cfg.QueueDepth {
		s.stats.Fallbacks++
		mRejected.Inc()
		return false
	}
	o := s.newOp(req)
	r := opRef{o: o, gen: o.gen}
	s.queued.push(r)
	s.queuedCount++
	s.queuedByGroup[req.SrcGroup].push(r)
	return true
}

// spmFootprint returns the SPM bytes an operation occupies while
// resident: a compress op stages the uncompressed page then shrinks
// logically to its output; we charge the larger (input) size for the
// whole residency, an upper bound consistent with the driver's lazy
// tracking. A decompress op stages the compressed input and produces
// a full page; we charge the output size.
func (s *Sim) spmFootprint(k OpKind) int {
	if k == CompressOp {
		return s.cfg.PageBytes
	}
	return s.cfg.PageBytes // output buffer dominates
}

// spmHasRoom reports whether a read of the given kind fits in the SPM
// right now.
func (s *Sim) spmHasRoom(k OpKind) bool {
	return s.spmUsed+s.spmFootprint(k) <= s.cfg.SPMBytes
}

// StepWindow advances the simulation by one refresh window, performing
// NMA accesses inside it. Returns the window's refresh group.
func (s *Sim) StepWindow() int {
	group := int(s.window % int64(s.groups))
	now := s.Now()
	cond := s.cfg.AccessesPerTRFC
	rand := s.cfg.RandomPerTRFC
	if s.inj.StormWindow(s.window) {
		// Injected refresh storm (the RogueRFM shape): refresh
		// management owns the whole tRFC, the side channel offers zero
		// access slots, and queued work simply ages one window.
		cond, rand = 0, 0
		s.stats.StormWindows++
		mStormWindows.Inc()
	}
	condBudget, randBudget := cond, rand
	s.traceOn = s.tracer != nil && s.tracer.Enabled()
	if s.traceOn {
		s.winAcc = s.winAcc[:0]
	}

	// Engine completions since the last window. The engine finishes a
	// page within roughly one window (4 KiB at ≥14 GB/s ≪ tREFI), so
	// this list stays short.
	keep := s.pending[:0]
	for _, o := range s.pending {
		if o.state == opPending && o.doneAt <= now {
			o.state = opCompleted
			s.completedCount++
			r := opRef{o: o, gen: o.gen}
			s.completedBucket(o.req.DstGroup).push(r) // -1 bucket holds flexible destinations
			s.completedFIFO.push(r)
		} else {
			keep = append(keep, o)
		}
	}
	s.pending = keep

	// Phase A: conditional write-backs. COMPLETED pages whose
	// destination row is being refreshed now — or whose destination is
	// flexible (DstGroup < 0, a group-aware allocator) — go back at no
	// activation cost.
	for cond > 0 {
		o := s.popCompletedGroup(group)
		if o == nil {
			o = s.popCompletedGroup(-1)
		}
		if o == nil {
			break
		}
		s.writeBack(o, now, false)
		cond--
	}
	// Phase B: conditional reads. Queued requests whose source row is
	// being refreshed now are read into the SPM, space permitting.
	for cond > 0 {
		o := s.peekQueuedGroup(group)
		if o == nil || !s.spmHasRoom(o.req.Kind) {
			break
		}
		s.popQueuedGroup(group)
		s.startRead(o, now, false)
		cond--
	}
	// Phase C: random accesses. Random accesses cost activation energy
	// and are rationed (§7: one per tRFC), so the scheduler spends them
	// only under pressure: when the SPM is filling with completed pages
	// whose destination windows are far away, when the request queue is
	// filling faster than conditional reads drain it, or when an
	// operation has aged past a full retention walk (its window came up
	// but the conditional budget was exhausted).
	aged := now - s.cfg.Timings.Retention
	for rand > 0 {
		var victim *op
		spmPressure := s.spmUsed > s.cfg.SPMBytes*3/4
		queuePressure := s.queuedCount > s.cfg.QueueDepth*3/4
		switch {
		case spmPressure:
			victim = s.oldestCompleted()
		case queuePressure:
			victim = s.oldestQueued()
		}
		if victim == nil {
			// Age-based rescue, oldest first across both stages.
			if o := s.oldestCompleted(); o != nil && o.doneAt <= aged {
				victim = o
			} else if o := s.oldestQueued(); o != nil && o.req.Arrive <= aged {
				victim = o
			}
		}
		if victim != nil && victim.state == opQueued && !s.spmHasRoom(victim.req.Kind) {
			// A blocked read cannot proceed; try draining instead.
			victim = s.oldestCompleted()
		}
		if victim == nil {
			break
		}
		if victim.state == opQueued {
			s.startRead(victim, now, true)
		} else {
			s.writeBack(victim, now, true)
		}
		rand--
	}

	if s.spmUsed > s.stats.MaxSPMOccupancy {
		s.stats.MaxSPMOccupancy = s.spmUsed
	}
	condDone := condBudget - cond
	randDone := randBudget - rand
	if condDone+randDone > 0 {
		s.stats.BusyWindows++
		mBusyWindows.Inc()
	}
	mWindows.Inc()
	mSlotsOffered.Add(int64(condBudget + randBudget))
	mCondAccesses.Add(int64(condDone))
	mRandAccesses.Add(int64(randDone))
	gQueueDepth.SetInt(int64(s.queuedCount))
	gSPMUsed.SetInt(int64(s.spmUsed))
	if s.traceOn && len(s.winAcc) > 0 {
		s.emitWindowSpans(group, now)
	}
	s.stats.Windows++
	s.window++
	if s.sampler != nil {
		// Samples land on the serial window-stepping path with all
		// metric updates for completed batches already published, so
		// sim-domain series are deterministic at any worker count.
		s.sampler.SimTick(int64(now))
	}
	return group
}

// idleSkip bulk-advances up to max windows during which the simulator
// provably performs no access: nothing queued, nothing awaiting
// write-back, and every pending op's engine completion lands after the
// last skipped window. It returns the number of windows skipped (0
// when the next window might do work, or when fast-forward is off).
// The skipped range is observably identical to stepping each window:
// the same counters advance by the same totals, gauges publish the
// same values, and sampler ticks land on the same timestamps.
func (s *Sim) idleSkip(max int64) int64 {
	if max <= 0 || s.queuedCount > 0 || s.completedCount > 0 || fastForwardDisabled.Load() {
		return 0
	}
	if len(s.pending) > 0 {
		// Only engine runs are in flight: every window before the
		// earliest doneAt performs nothing (phase A/B have no
		// COMPLETED/queued ops; phase C's pressure and age rescues
		// only consider those same sets). The completing window itself
		// must be stepped.
		minDone := s.pending[0].doneAt
		for _, o := range s.pending[1:] {
			if o.doneAt < minDone {
				minDone = o.doneAt
			}
		}
		trefi := s.cfg.Timings.TREFI
		skippable := (minDone+trefi-1)/trefi - s.window - 1
		if skippable < max {
			max = skippable
		}
	}
	if max <= 0 {
		return 0
	}
	s.skipWindows(max)
	return max
}

// skipWindows advances n provably-idle windows in O(1): window clock,
// Stats.Windows, and the per-window counters move in bulk, with the
// counter adds chunked by Sampler.SimTickRange so every flight-
// recorder sample in the range reads exactly the registry state a
// stepped run would have produced at that timestamp.
func (s *Sim) skipWindows(n int64) {
	start := s.Now()
	// Stepped windows publish these gauges every tREFI; across an idle
	// range the values are constant, so one store reproduces every
	// sample a stepped run would record.
	gQueueDepth.SetInt(int64(s.queuedCount))
	gSPMUsed.SetInt(int64(s.spmUsed))
	if s.sampler != nil {
		s.sampler.SimTickRange(int64(start), int64(s.cfg.Timings.TREFI), n, s.bulkAdvance)
	} else {
		s.bulkAdvance(n) //xfm:ignore hotpath-alloc bulkAdvance is fixed at construction to the advanceIdle method value; the indirect call allocates nothing
	}
}

// advanceIdle applies k idle windows' worth of bulk updates: the same
// counters a stepped idle window bumps, coalesced. Bound once as
// s.bulkAdvance so fast-forwarding allocates nothing per call.
func (s *Sim) advanceIdle(k int64) {
	if k <= 0 {
		return
	}
	// Storm windows inside the skipped range offered zero slots; count
	// them arithmetically so a fast-forwarded run publishes exactly the
	// totals a stepped run would (skipping is already restricted to
	// windows that perform no accesses, storm or not).
	storms := s.inj.StormWindowsIn(s.window, s.window+k)
	if storms > 0 {
		s.stats.StormWindows += storms
		mStormWindows.Add(storms)
	}
	mWindows.Add(k)
	mSlotsOffered.Add((k - storms) * s.slotsPerWin)
	s.stats.Windows += k
	s.window += k
}

// AdvanceTo steps refresh windows until the window clock passes now,
// fast-forwarding through idle stretches. Equivalent to calling
// StepWindow while Now() <= now.
func (s *Sim) AdvanceTo(now dram.Ps) {
	trefi := s.cfg.Timings.TREFI
	for s.Now() <= now {
		// Number of windows whose execution time is still <= now.
		if s.idleSkip(now/trefi-s.window) > 0 {
			continue
		}
		s.StepWindow()
	}
}

// emitWindowSpans records the window that just executed as a
// "refresh-window" span and tiles the accesses it performed across the
// tRFC as nested compress/decompress spans, so the Chrome trace shows
// compression bursts packed inside refresh windows (Fig. 10).
//
//xfm:allocok span emission runs only with a tracer attached (diagnostic runs), not in steady-state benchmarks
func (s *Sim) emitWindowSpans(group int, start dram.Ps) {
	if s.track < 0 {
		s.track = s.tracer.NewTrack("nma")
	}
	end := start + s.cfg.Timings.TRFC
	s.tracer.Span(s.track, "refresh-window", "dram", start, end, map[string]int64{
		"group":  int64(group),
		"window": s.window,
	})
	slot := s.cfg.Timings.TRFC / dram.Ps(len(s.winAcc))
	for i, a := range s.winAcc {
		phase := int64(0) // read into SPM
		if a.write {
			phase = 1 // write-back to DRAM
		}
		random := int64(0)
		if a.random {
			random = 1
		}
		s.tracer.Span(s.track, a.o.req.Kind.String(), "nma",
			start+dram.Ps(i)*slot, start+dram.Ps(i+1)*slot, map[string]int64{
				"req":       a.o.req.ID,
				"random":    random,
				"writeback": phase,
			})
	}
}

// popCompletedGroup removes and returns the oldest COMPLETED op whose
// destination bucket is key, dropping tombstones left by random
// write-backs and recycled incarnations.
func (s *Sim) popCompletedGroup(key int) *op {
	b := s.completedBucket(key)
	for !b.empty() {
		r := b.peek()
		b.pop()
		if r.live(opCompleted) {
			return r.o
		}
	}
	return nil
}

// peekQueuedGroup returns (without removing) the oldest queued op with
// the given source group, compacting tombstones.
func (s *Sim) peekQueuedGroup(group int) *op {
	b := &s.queuedByGroup[group]
	for !b.empty() {
		r := b.peek()
		if r.live(opQueued) {
			return r.o
		}
		b.pop()
	}
	return nil
}

func (s *Sim) popQueuedGroup(group int) {
	b := &s.queuedByGroup[group]
	if !b.empty() {
		b.pop()
	}
}

// oldestQueued returns the longest-waiting queued op, trimming served
// entries off the FIFO head.
func (s *Sim) oldestQueued() *op {
	for !s.queued.empty() {
		r := s.queued.peek()
		if r.live(opQueued) {
			return r.o
		}
		s.queued.pop()
	}
	return nil
}

// oldestCompleted returns the longest-completed op awaiting
// write-back, trimming the FIFO head.
func (s *Sim) oldestCompleted() *op {
	for !s.completedFIFO.empty() {
		r := s.completedFIFO.peek()
		if r.live(opCompleted) {
			return r.o
		}
		s.completedFIFO.pop()
	}
	return nil
}

// startRead moves a queued op into the SPM and starts its engine run.
func (s *Sim) startRead(o *op, now dram.Ps, random bool) {
	o.state = opPending
	o.readAt = now
	o.readRand = random
	o.spmBytes = s.spmFootprint(o.req.Kind)
	s.spmUsed += o.spmBytes
	s.queuedCount--
	gbps := s.cfg.CompressGBps
	if o.req.Kind == DecompressOp {
		gbps = s.cfg.DecompressGBps
	}
	computePs := dram.Ps(float64(s.cfg.PageBytes) / (gbps * 1e9) * float64(dram.Second))
	o.doneAt = now + s.cfg.Timings.TRFC + computePs
	s.pending = append(s.pending, o)
	s.countAccess(random)
	if random {
		s.stats.ReadRand++
	} else {
		s.stats.ReadCond++
	}
	if s.traceOn {
		s.winAcc = append(s.winAcc, windowAccess{o: o, random: random})
	}
}

// writeBack finishes an op: its output leaves the SPM and the struct
// returns to the free list. The generation bump tombstones every
// reference still sitting in a lazily-compacted FIFO or bucket; the
// struct itself is not reused before the next Submit, so same-window
// readers (span emission) still see its request fields.
func (s *Sim) writeBack(o *op, now dram.Ps, random bool) {
	o.state = opDone
	o.wroteAt = now
	s.spmUsed -= o.spmBytes
	s.completedCount--
	s.countAccess(random)
	if random {
		s.stats.WriteRand++
	} else {
		s.stats.WriteCond++
	}
	o.writeRand = random
	s.stats.Completed++
	mCompleted.Inc()
	lat := now + s.cfg.Timings.TRFC - o.req.Arrive
	s.stats.SumLatencyPs += lat
	hLatency.Observe(float64(lat))
	if lat > s.stats.MaxLatencyPs {
		s.stats.MaxLatencyPs = lat
	}
	if s.traceOn {
		s.winAcc = append(s.winAcc, windowAccess{o: o, random: random, write: true})
	}
	o.gen++
	s.free = append(s.free, o)
}

func (s *Sim) countAccess(random bool) {
	if random {
		s.stats.Random++
	} else {
		s.stats.Conditional++
	}
}

// RunWindows steps n windows, pulling arrivals from next, which must
// return requests in nondecreasing Arrive order and ok=false when the
// stream ends. Arrivals due before each window's start are submitted
// before the window executes. Idle stretches between arrivals are
// fast-forwarded.
func (s *Sim) RunWindows(n int, next func() (Request, bool)) {
	pendingValid := false
	exhausted := false
	var pending Request
	trefi := s.cfg.Timings.TREFI
	remaining := int64(n)
	for remaining > 0 {
		windowStart := s.Now()
		for !exhausted {
			if !pendingValid {
				r, ok := next()
				if !ok {
					exhausted = true
					break
				}
				pending = r
				pendingValid = true
			}
			if pending.Arrive > windowStart {
				break
			}
			s.Submit(pending)
			pendingValid = false
		}
		max := remaining
		if pendingValid {
			// Windows executing before the next arrival see no
			// submissions; the arrival's own window must be stepped
			// through the submit loop above.
			untilArrival := (int64(pending.Arrive)+trefi-1)/trefi - s.window - 1
			if untilArrival < max {
				max = untilArrival
			}
		}
		if skipped := s.idleSkip(max); skipped > 0 {
			remaining -= skipped
			continue
		}
		s.StepWindow()
		remaining--
	}
}
