package nma

import "xfm/internal/telemetry"

// Process-wide NMA metrics (aggregated across every Sim in the
// process). The per-window counters are bumped in bulk at the end of
// StepWindow so the hot loop stays a handful of atomic adds per tRFC,
// and nma_slot_utilization is derived at export time from the offered
// and consumed slot counters — the Fig. 6/Fig. 12 "how much of the
// refresh side channel did the workload consume" number.
var (
	mWindows = telemetry.NewCounter("nma_windows_total",
		"Refresh windows (tRFC) the NMA simulators stepped through.")
	mBusyWindows = telemetry.NewCounter("nma_busy_windows_total",
		"Refresh windows that carried at least one NMA access.")
	mCondAccesses = telemetry.NewCounter("nma_conditional_accesses_total",
		"Conditional (refresh-parallel, zero activation cost) accesses performed.")
	mRandAccesses = telemetry.NewCounter("nma_random_accesses_total",
		"Random accesses performed: slots stolen from the one-per-tRFC budget.")
	mSlotsOffered = telemetry.NewCounter("nma_slots_offered_total",
		"Access slots offered across all windows (conditional budget + random budget per tRFC).")
	mSubmitted = telemetry.NewCounter("nma_requests_submitted_total",
		"Offload requests offered to the Compress_Request_Queue.")
	mRejected = telemetry.NewCounter("nma_requests_rejected_total",
		"Offload requests rejected by queue back-pressure (driver falls back to the CPU).")
	mCompleted = telemetry.NewCounter("nma_requests_completed_total",
		"Offload requests fully written back to DRAM.")
	hLatency = telemetry.NewHistogram("nma_offload_latency_ps",
		"Offload completion latency (submission to write-back) in simulated picoseconds.",
		telemetry.ExpBuckets(1e6, 2, 18))
	gQueueDepth = telemetry.NewGauge("nma_queue_depth",
		"Current Compress_Request_Queue depth (last stepped window).")
	gSPMUsed = telemetry.NewGauge("nma_spm_used_bytes",
		"Current ScratchPad Memory occupancy in bytes (last stepped window).")
	mStormWindows = telemetry.NewCounter("nma_storm_windows_total",
		"Refresh windows starved by an injected refresh storm (zero slots offered).")
)

func init() {
	telemetry.NewGaugeFunc("nma_slot_utilization",
		"Performed accesses over offered access slots across all refresh windows.",
		func() float64 {
			offered := mSlotsOffered.Value()
			if offered == 0 {
				return 0
			}
			return float64(mCondAccesses.Value()+mRandAccesses.Value()) / float64(offered)
		})
}
