package nma

import (
	"fmt"

	"xfm/internal/dram"
)

// Array models the NMAs of a multi-rank XFM deployment: one Sim per
// rank, with each rank's refresh counter offset from its neighbors.
// Memory controllers deliberately stagger REF commands across ranks
// (so refresh current draw does not align), which XFM inherits: at any
// instant some rank is inside (or near) a refresh window, smoothing
// the side channel's aggregate service.
type Array struct {
	sims   []*Sim
	offset []int // per-rank refresh counter offset in groups
	next   int   // round-robin cursor for unplaced requests
}

// NewArray builds n rank simulators with evenly staggered refresh
// counters. It panics for n ≤ 0, which indicates a programming error.
func NewArray(cfg Config, n int) *Array {
	if n <= 0 {
		panic("nma: array needs at least one rank")
	}
	a := &Array{}
	groups := cfg.Device.RefreshGroups()
	for i := 0; i < n; i++ {
		sim := NewSim(cfg)
		off := i * groups / n
		// Start the rank's window clock `off` windows ahead so its
		// refresh counter leads by `off` groups. Setting the clock
		// directly (rather than stepping `off` empty windows) keeps
		// construction O(1) and leaves Stats/metrics untouched — the
		// stagger is an initial condition, not simulated history.
		sim.window = int64(off)
		a.sims = append(a.sims, sim)
		a.offset = append(a.offset, off)
	}
	return a
}

// Ranks returns the number of ranks.
func (a *Array) Ranks() int { return len(a.sims) }

// Rank returns rank i's simulator.
func (a *Array) Rank(i int) *Sim { return a.sims[i] }

// Submit routes a request to a rank. rank < 0 selects round-robin
// (pages interleave across ranks in real systems; round-robin models
// an even spread without tracking exact addresses).
func (a *Array) Submit(rank int, req Request) bool {
	if rank < 0 {
		rank = a.next % len(a.sims)
		a.next++
	}
	if rank >= len(a.sims) {
		panic(fmt.Sprintf("nma: rank %d out of range", rank))
	}
	return a.sims[rank].Submit(req)
}

// AdvanceTo steps every rank's windows to time now, fast-forwarding
// each rank through its idle stretches.
func (a *Array) AdvanceTo(now dram.Ps) {
	for _, s := range a.sims {
		s.AdvanceTo(now)
	}
}

// StepAll advances every rank by one window.
func (a *Array) StepAll() {
	for _, s := range a.sims {
		s.StepWindow()
	}
}

// Stats aggregates all ranks' statistics.
func (a *Array) Stats() Stats {
	var out Stats
	for _, s := range a.sims {
		st := s.Stats()
		out.Submitted += st.Submitted
		out.Fallbacks += st.Fallbacks
		out.Completed += st.Completed
		out.Conditional += st.Conditional
		out.Random += st.Random
		out.ReadCond += st.ReadCond
		out.ReadRand += st.ReadRand
		out.WriteCond += st.WriteCond
		out.WriteRand += st.WriteRand
		out.SumLatencyPs += st.SumLatencyPs
		out.Windows += st.Windows
		if st.MaxLatencyPs > out.MaxLatencyPs {
			out.MaxLatencyPs = st.MaxLatencyPs
		}
		if st.MaxSPMOccupancy > out.MaxSPMOccupancy {
			out.MaxSPMOccupancy = st.MaxSPMOccupancy
		}
	}
	return out
}

// CurrentGroups returns each rank's next refresh group, exposing the
// stagger.
func (a *Array) CurrentGroups() []int {
	out := make([]int, len(a.sims))
	for i, s := range a.sims {
		out[i] = int(s.window % int64(s.groups))
	}
	return out
}
