package chaos

import (
	"reflect"
	"testing"

	"xfm/internal/fault"
	"xfm/internal/xfm"
)

func TestCIDefaultPassesStrictGate(t *testing.T) {
	res, err := Run(Config{Spec: "ci-default", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if err := res.Gate(true); err != nil {
		t.Fatal(err)
	}
	if res.Pages == 0 || res.Corpora == 0 {
		t.Fatalf("empty run: %+v", res)
	}
	if res.StormWindows == 0 {
		t.Fatal("ci-default scheduled storms but none were counted")
	}
	if res.Injected[fault.SiteECCMulti] == 0 || res.Quarantined == 0 {
		t.Fatalf("no ECC quarantines exercised: %+v", res)
	}
}

func TestRunsAreBitReproducible(t *testing.T) {
	a, err := Run(Config{Spec: "ci-default", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Spec: "ci-default", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed runs diverge:\n%+v\n%+v", a, b)
	}
	c, err := Run(Config{Spec: "ci-default", Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical results — injector ignores the seed")
	}
}

func TestOffSpecIsLossless(t *testing.T) {
	res, err := Run(Config{Spec: "off", Seed: 1, PagesPerCorpus: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Gate(false); err != nil {
		t.Fatal(err)
	}
	var injected int64
	for s := fault.Site(0); s < fault.NumSites; s++ {
		injected += res.Injected[s]
	}
	if injected != 0 || res.Retries != 0 || res.Trips != 0 {
		t.Fatalf("off spec injected faults: %+v", res)
	}
	// And strict mode must reject the inert run.
	if res.Gate(true) == nil {
		t.Fatal("strict gate passed without any injected faults")
	}
}

func TestGateRejectsLoss(t *testing.T) {
	r := &Result{Pages: 10, Mismatches: 1, Trips: 1, Recoveries: 1, Served: 1, FinalMode: xfm.ModeHealthy}
	r.Injected[fault.SiteCorruptStream] = 1
	if r.Gate(false) == nil || r.Gate(true) == nil {
		t.Fatal("gate accepted data loss")
	}
}
