// Package chaos is the fault-injection gate: it drives the full seed
// corpus through an XFM backend wired to a deterministic fault.Injector
// and verifies zero data loss end to end. Every page swapped out must
// come back byte-identical despite injected NMA stalls, spurious
// queue-fulls, ECC bit flips, corrupt compressed streams, and refresh
// storms — the injected faults exercise retry-once, the circuit
// breaker's CPU_ONLY trip and canary recovery, and the ECC quarantine's
// staging re-serves (DESIGN §10).
//
// Runs are bit-reproducible: for a fixed spec and seed two runs produce
// identical Results and identical flight-recorder dumps, which CI
// checks with telemetryck -diff.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"strings"

	"xfm/internal/compress"
	"xfm/internal/corpus"
	"xfm/internal/dram"
	"xfm/internal/fault"
	"xfm/internal/memctrl"
	"xfm/internal/nma"
	"xfm/internal/sfm"
	"xfm/internal/xfm"
)

// Config parameterizes one chaos run.
type Config struct {
	// Spec is the fault schedule in fault.ParseSpec grammar (a preset
	// like "ci-default", site=p[:max] fields, storm=period:len, or
	// @file.json).
	Spec string
	// Seed seeds both the injector and the corpus generators.
	Seed int64
	// PagesPerCorpus is how many 4 KiB pages of each corpus to swap
	// (default 64).
	PagesPerCorpus int
	// BatchPages is the batch size for the batched swap paths
	// (default 16). The final short batch of a corpus retries any
	// corrupt-stream failures through the serial path, so both paths
	// are exercised.
	BatchPages int
	// Policy overrides the breaker policy (nil uses GatePolicy).
	Policy *xfm.DegradePolicy
}

// GatePolicy is the breaker policy the CI gate runs with: small enough
// windows that the ci-default preset's budgeted stall outage trips the
// breaker and the canaries close it again well within one run.
func GatePolicy() xfm.DegradePolicy {
	return xfm.DegradePolicy{
		Window:          16,
		TripFailures:    4,
		DegradeFailures: 2,
		ReprobeAfter:    8,
		CanarySuccesses: 3,
		RetryOnce:       true,
	}
}

// Result summarizes one chaos run. All fields are deterministic for a
// fixed Config.
type Result struct {
	Corpora, Pages int
	// Mismatches counts pages that came back wrong or not at all — the
	// gate's zero-data-loss invariant is Mismatches == 0.
	Mismatches int
	// Retries counts corrupt-stream swap-in failures that succeeded on
	// the per-page retry.
	Retries           int
	Trips, Recoveries int64
	Quarantined       int
	Served            int64
	Injected          [fault.NumSites]int64
	StormWindows      int64
	FinalMode         xfm.Mode
	// Errors holds the first few verification failures, for the report.
	Errors []string
}

// String renders the run report.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "chaos: %d corpora, %d pages, %d mismatches, %d corrupt-stream retries\n",
		r.Corpora, r.Pages, r.Mismatches, r.Retries)
	fmt.Fprintf(&sb, "chaos: breaker trips=%d recoveries=%d, quarantined=%d pages (%d re-serves), final mode %s\n",
		r.Trips, r.Recoveries, r.Quarantined, r.Served, r.FinalMode)
	fmt.Fprintf(&sb, "chaos: injected")
	for s := fault.Site(0); s < fault.NumSites; s++ {
		if s == fault.SiteRefreshStorm {
			continue
		}
		fmt.Fprintf(&sb, " %s=%d", s, r.Injected[s])
	}
	fmt.Fprintf(&sb, " storm-windows=%d\n", r.StormWindows)
	for _, e := range r.Errors {
		fmt.Fprintf(&sb, "chaos: FAIL %s\n", e)
	}
	return sb.String()
}

// Gate checks the run against the chaos gate. Zero data loss is always
// required; strict additionally requires that the run actually
// exercised the degradation machinery — the breaker tripped and
// recovered, at least one quarantined page was re-served from staging,
// at least one corrupt stream was injected, and the backend ended
// healthy — so a quietly inert injector cannot pass CI.
func (r *Result) Gate(strict bool) error {
	if r.Mismatches > 0 {
		return fmt.Errorf("chaos: %d of %d pages lost or corrupted", r.Mismatches, r.Pages)
	}
	if !strict {
		return nil
	}
	switch {
	case r.Trips < 1:
		return errors.New("chaos: strict gate: breaker never tripped")
	case r.Recoveries < 1:
		return errors.New("chaos: strict gate: breaker never recovered")
	case r.Served < 1:
		return errors.New("chaos: strict gate: no quarantined page was re-served from staging")
	case r.Injected[fault.SiteCorruptStream] < 1:
		return errors.New("chaos: strict gate: no corrupt stream was injected")
	case r.FinalMode != xfm.ModeHealthy:
		return fmt.Errorf("chaos: strict gate: final mode %s, want HEALTHY", r.FinalMode)
	}
	return nil
}

// Run executes one chaos run: every corpus is generated, swapped out
// through the batched path, aged a few refresh windows, swapped back in
// and byte-verified against the original. Swap-ins that fail with an
// injected compress.ErrCorrupt are retried once through the serial path
// (the injector corrupts each unique stream only once, so the retry
// must succeed).
func Run(cfg Config) (*Result, error) {
	if cfg.PagesPerCorpus <= 0 {
		cfg.PagesPerCorpus = 64
	}
	if cfg.BatchPages <= 0 {
		cfg.BatchPages = 16
	}
	plan, err := fault.ParseSpec(cfg.Spec, cfg.Seed)
	if err != nil {
		return nil, err
	}
	inj := fault.NewInjector(plan)

	sim := nma.NewSim(nma.DefaultConfig(dram.Device32Gb))
	drv := xfm.NewDriver(sim)
	m := memctrl.SkylakeMapping(4, 2, dram.Device32Gb)
	b, err := xfm.NewShardedBackend(fault.WrapCodec(compress.NewLZFast(), inj), 1<<30, 4, 0, drv, m)
	if err != nil {
		return nil, err
	}
	defer b.Close()
	b.SetInjector(inj)
	pol := GatePolicy()
	if cfg.Policy != nil {
		pol = *cfg.Policy
	}
	b.EnableDegradation(pol)

	servedBefore := xfm.QuarantineServed()
	res := &Result{}
	trefi := sim.Config().Timings.TREFI
	now := dram.Ps(0)
	nextID := sfm.PageID(0)
	for _, name := range corpus.Names() {
		gen, err := corpus.Get(name)
		if err != nil {
			return nil, err
		}
		pages := corpus.Pages(gen(cfg.Seed, cfg.PagesPerCorpus*sfm.PageSize), sfm.PageSize)
		for start := 0; start < len(pages); start += cfg.BatchPages {
			end := start + cfg.BatchPages
			if end > len(pages) {
				end = len(pages)
			}
			batch := pages[start:end]
			outs := make([]sfm.PageOut, len(batch))
			ins := make([]sfm.PageIn, len(batch))
			for i, p := range batch {
				id := nextID
				nextID++
				outs[i] = sfm.PageOut{ID: id, Data: p}
				ins[i] = sfm.PageIn{ID: id, Dst: make([]byte, sfm.PageSize)}
			}
			now += trefi
			for i, err := range b.SwapOutBatch(now, outs) {
				if err != nil {
					res.fail("corpus %s page %d: swap-out: %v", name, start+i, err)
				}
			}
			// Age the batch a few windows so storms pass over resident
			// pages and the NMA queue drains.
			now += 4 * trefi
			for i, err := range b.SwapInBatch(now, ins, true) {
				res.Pages++
				if err != nil && errors.Is(err, compress.ErrCorrupt) {
					// Transient injected corruption: the stream is intact
					// in the store, a retry must decode it.
					res.Retries++
					err = b.SwapIn(now, ins[i].ID, ins[i].Dst, true)
				}
				if err != nil {
					res.fail("corpus %s page %d: swap-in: %v", name, start+i, err)
					continue
				}
				if !bytes.Equal(ins[i].Dst, batch[i]) {
					res.fail("corpus %s page %d: data mismatch after swap-in", name, start+i)
				}
			}
		}
		res.Corpora++
	}

	res.Trips, res.Recoveries = b.BreakerStats()
	res.Quarantined = b.QuarantinedPages()
	res.Served = xfm.QuarantineServed() - servedBefore
	for s := fault.Site(0); s < fault.NumSites; s++ {
		res.Injected[s] = inj.Injected(s)
	}
	res.StormWindows = sim.Stats().StormWindows
	res.FinalMode = b.Mode()
	return res, nil
}

// fail records one verification failure (the report keeps the first 8).
func (r *Result) fail(format string, args ...any) {
	r.Mismatches++
	if len(r.Errors) < 8 {
		r.Errors = append(r.Errors, fmt.Sprintf(format, args...))
	}
}
