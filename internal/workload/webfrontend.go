package workload

import (
	"fmt"

	"xfm/internal/corpus"
	"xfm/internal/dram"
	"xfm/internal/sfm"
	"xfm/internal/trace"
)

// WebFrontend is the synthetic web front-end application of §7: a
// DataFrame-style analytics service whose column data lives in an
// AIFM-style far-memory heap. Queries touch pages with Zipfian
// locality; the SFM controller demotes cold pages; hot-set shifts
// cause demand faults and prefetches. Running it produces the
// swap-in/out trace the XFM emulator consumes.
type WebFrontend struct {
	// Pages is the total data set size in pages.
	Pages int
	// HotFraction is the share of pages in the working set at any
	// time.
	HotFraction float64
	// Queries is the number of query operations to run.
	Queries int
	// QueryGapPs is the simulated time between queries.
	QueryGapPs dram.Ps
	// ColdAfter demotes pages idle longer than this.
	ColdAfter dram.Ps
	// ShiftEvery rotates the hot set every N queries (phase change),
	// generating prefetch bursts. 0 disables shifts.
	ShiftEvery int
	// Seed drives all randomness.
	Seed int64
}

// DefaultWebFrontend returns the configuration used by the
// experiments: 512 pages (2 MiB of columns), 25% hot, phase shift
// every 500 queries.
func DefaultWebFrontend() WebFrontend {
	return WebFrontend{
		Pages:       512,
		HotFraction: 0.25,
		Queries:     4000,
		QueryGapPs:  dram.Millisecond,
		ColdAfter:   200 * dram.Millisecond,
		ShiftEvery:  500,
		Seed:        1,
	}
}

// Result is the outcome of one web-front-end run.
type Result struct {
	Trace        []trace.Record
	HeapStats    sfm.HeapStats
	BackendStats sfm.BackendStats
	// PromotionRate is the observed far-memory promotion rate: the
	// fraction of pages that resided in far memory during the run
	// which were promoted back at least once (§2.1). Always in [0, 1].
	PromotionRate float64
	Duration      dram.Ps
}

// Run executes the workload against the given backend and returns the
// swap trace and statistics.
func (w WebFrontend) Run(backend sfm.Backend) (Result, error) {
	if w.Pages <= 0 || w.Queries <= 0 {
		return Result{}, fmt.Errorf("workload: non-positive pages/queries in %+v", w)
	}
	heap := sfm.NewHeap(backend)
	ids := make([]sfm.PageID, w.Pages)
	for i := range ids {
		// Column data: CSV-like tables, realistic compressibility.
		data := corpus.CSVTable(w.Seed+int64(i), sfm.PageSize)
		ids[i] = heap.Alloc(0, data)
	}
	zipf := NewZipfAccess(w.Seed, max(int(float64(w.Pages)*w.HotFraction), 1), 1.3)
	ctl := &sfm.ColdScanController{Heap: heap, ColdAfter: w.ColdAfter}

	var rec []trace.Record
	// Distinct-page tracking for the promotion rate (§2.1): everFar
	// marks pages that resided in far memory at any point, promoted
	// marks those promoted back at least once. Raw byte counters would
	// count re-promotions of the same hot page every time. The running
	// counts feed the sfm_promotion_rate gauge every cold-scan
	// epoch so the flight recorder sees the rate as a trajectory.
	everFar := make([]bool, w.Pages)
	promoted := make([]bool, w.Pages)
	farCount, promCount := 0, 0
	markFar := func(i int) {
		if !everFar[i] {
			everFar[i] = true
			farCount++
		}
	}
	markPromoted := func(i int) {
		markFar(i)
		if !promoted[i] {
			promoted[i] = true
			promCount++
		}
	}
	hotBase := 0
	now := dram.Ps(0)
	for q := 0; q < w.Queries; q++ {
		now += w.QueryGapPs
		// Hot-set rotation: a phase change makes a new region hot; the
		// controller prefetches it (predictable access pattern, §3.2).
		if w.ShiftEvery > 0 && q > 0 && q%w.ShiftEvery == 0 {
			hotBase = (hotBase + int(float64(w.Pages)*w.HotFraction)) % w.Pages
			for i := 0; i < int(float64(w.Pages)*w.HotFraction)/2; i++ {
				pi := (hotBase + i) % w.Pages
				id := ids[pi]
				if !heap.Resident(id) {
					if err := heap.Prefetch(now, id); err == nil {
						rec = append(rec, trace.Record{AtPs: now, Op: trace.Prefetch, PageID: int64(id), Bytes: sfm.PageSize})
						markPromoted(pi)
					}
				}
			}
		}
		idx := (hotBase + zipf.Next()) % w.Pages
		id := ids[idx]
		wasFar := !heap.Resident(id)
		if _, err := heap.Touch(now, id); err != nil {
			return Result{}, err
		}
		if wasFar {
			rec = append(rec, trace.Record{AtPs: now, Op: trace.SwapIn, PageID: int64(id), Bytes: sfm.PageSize})
			markPromoted(idx)
		}
		// Periodic cold scan (the kreclaimd-style daemon).
		if q%100 == 99 {
			before := heap.Stats().FarPages
			ctl.Run(now)
			demoted := heap.Stats().FarPages - before
			for k := int64(0); k < demoted; k++ {
				rec = append(rec, trace.Record{AtPs: now, Op: trace.SwapOut, PageID: -1, Bytes: sfm.PageSize})
			}
			// Demotions only happen inside scans, so sampling residency
			// here observes every page that ever went far.
			for i, id := range ids {
				if !heap.Resident(id) {
					markFar(i)
				}
			}
			if farCount > 0 {
				gPromotionRate.Set(float64(promCount) / float64(farCount))
			}
		}
	}
	promotedBytes := int64(promCount) * sfm.PageSize
	farBytes := int64(farCount) * sfm.PageSize
	res := Result{
		Trace:        rec,
		HeapStats:    heap.Stats(),
		BackendStats: backend.Stats(),
		Duration:     now,
	}
	res.PromotionRate = PromotionRateOfTrace(promotedBytes, farBytes)
	return res, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
