// Package workload provides the traffic generators behind the paper's
// evaluation: promotion-rate-driven swap request streams (Fig. 12),
// SPEC-like memory-intensive antagonist profiles (Fig. 11, §3.2), and
// the synthetic DataFrame web front-end that exercises the AIFM-style
// far-memory heap (§7).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"xfm/internal/dram"
	"xfm/internal/nma"
)

// PromotionTraffic converts an SFM deployment's promotion rate into a
// per-rank offload request stream. In a stable state the compression
// and decompression rates are equal (§3.2), so each promoted page
// produces one decompress and one compress request.
type PromotionTraffic struct {
	// SFMCapacityGB is the far-memory capacity (512 in the paper's
	// sensitivity studies).
	SFMCapacityGB float64
	// PromotionRate is the fraction of far memory accessed per minute.
	PromotionRate float64
	// Ranks is the number of DRAM ranks the SFM region spreads over;
	// traffic divides evenly among them.
	Ranks int
	// PageBytes is the offload granularity.
	PageBytes int
	// Groups is the refresh group modulus (8192).
	Groups int
	// Seed makes the stream deterministic.
	Seed int64

	// PagesPerGroup controls scan locality: cold-page selection walks
	// application memory in address order (Google's kreclaimd scans;
	// §2.1) and zsmalloc fills region slabs sequentially, so
	// consecutive requests target consecutive DRAM rows — several
	// pages land in each refresh group before the scan moves to the
	// next. 0 disables clustering (uniform random groups).
	PagesPerGroup int
	// RestartProb is the per-request probability that a scan jumps to
	// a fresh random position (a new reclaim pass or allocation
	// region).
	RestartProb float64

	// DstAheadGroups enables refresh-aware destination placement: the
	// backend's allocator picks a free slot whose DRAM row will be
	// refreshed within the next DstAheadGroups windows after the
	// request arrives, bounding how long a completed page waits in the
	// SPM for its conditional write-back (design decision D4 in
	// DESIGN.md). Requires TREFI. 0 keeps destinations on an
	// independent scan (or uniform when PagesPerGroup is 0).
	DstAheadGroups int
	// TREFI is the refresh interval, needed to convert arrival times
	// into window indexes for DstAheadGroups.
	TREFI dram.Ps

	// Burstiness makes the arrivals a two-state (on/off) modulated
	// Poisson process with the same mean rate: during "on" periods the
	// instantaneous rate is (1 + Burstiness)× the mean, during "off"
	// periods (1 − Burstiness)×. 0 = plain Poisson. The paper's
	// motivation calls SFM traffic "bursty swap ins and outs" (§3.2).
	Burstiness float64
	// BurstPeriod is the mean duration of each on/off phase.
	BurstPeriod dram.Ps
}

// Validate checks the parameters.
func (p PromotionTraffic) Validate() error {
	if p.SFMCapacityGB <= 0 || p.PageBytes <= 0 || p.Ranks <= 0 || p.Groups <= 0 {
		return fmt.Errorf("workload: non-positive parameter in %+v", p)
	}
	if p.PromotionRate < 0 || p.PromotionRate > 1 {
		return fmt.Errorf("workload: promotion rate %v outside [0,1]", p.PromotionRate)
	}
	if p.Burstiness < 0 || p.Burstiness >= 1 {
		if p.Burstiness != 0 {
			return fmt.Errorf("workload: burstiness %v outside [0,1)", p.Burstiness)
		}
	}
	if p.Burstiness > 0 && p.BurstPeriod <= 0 {
		return fmt.Errorf("workload: burstiness requires a positive BurstPeriod")
	}
	return nil
}

// PagesPerSecondPerRank returns the offload request rate one rank
// sees: promoted pages plus the matching compressions.
func (p PromotionTraffic) PagesPerSecondPerRank() float64 {
	bytesPerSec := p.SFMCapacityGB * 1e9 * p.PromotionRate / 60
	pagesPerSec := bytesPerSec / float64(p.PageBytes)
	return 2 * pagesPerSec / float64(p.Ranks) // compress + decompress
}

// SwapGBps returns the total swap bandwidth (each direction) in GB/s,
// the EQ1 rate: capacity × promotion / 60 s.
func (p PromotionTraffic) SwapGBps() float64 {
	return p.SFMCapacityGB * p.PromotionRate / 60
}

// Stream returns an iterator producing Poisson arrivals for `dur` of
// simulated time, in nondecreasing Arrive order, alternating compress
// and decompress requests with uniformly distributed refresh groups.
func (p PromotionTraffic) Stream(dur dram.Ps) func() (nma.Request, bool) {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	rate := p.PagesPerSecondPerRank() // events per second
	var now dram.Ps
	var id int64

	// Independent scan cursors for the two address spaces: cold pages
	// in local memory (compress sources / decompress destinations) and
	// slots in the SFM region (compress destinations / decompress
	// sources).
	srcScan := newScan(rng, p.Groups, p.PagesPerGroup, p.RestartProb)
	dstScan := newScan(rng, p.Groups, p.PagesPerGroup, p.RestartProb)
	if p.DstAheadGroups > 0 && p.TREFI <= 0 {
		panic("workload: DstAheadGroups requires TREFI")
	}

	// Burst phase state: phaseEnd is when the current on/off phase
	// expires.
	burstOn := true
	var phaseEnd dram.Ps
	if p.Burstiness > 0 {
		phaseEnd = dram.Ps(rng.ExpFloat64() * float64(p.BurstPeriod))
	}

	return func() (nma.Request, bool) {
		if rate <= 0 {
			return nma.Request{}, false
		}
		instRate := rate
		if p.Burstiness > 0 {
			for now >= phaseEnd {
				burstOn = !burstOn
				phaseEnd += dram.Ps(rng.ExpFloat64() * float64(p.BurstPeriod))
			}
			if burstOn {
				instRate = rate * (1 + p.Burstiness)
			} else {
				instRate = rate * (1 - p.Burstiness)
			}
		}
		// Exponential inter-arrival gap at the phase's rate.
		gapSec := rng.ExpFloat64() / instRate
		now += dram.Ps(gapSec * float64(dram.Second))
		if now > dur {
			return nma.Request{}, false
		}
		id++
		kind := nma.CompressOp
		if id%2 == 0 {
			kind = nma.DecompressOp
		}
		dst := dstScan()
		if p.DstAheadGroups > 0 {
			window := int(now / p.TREFI)
			dst = (window + 1 + rng.Intn(p.DstAheadGroups)) % p.Groups
		}
		return nma.Request{
			ID:       id,
			Kind:     kind,
			SrcGroup: srcScan(),
			DstGroup: dst,
			Arrive:   now,
		}, true
	}
}

// newScan returns a refresh-group generator: uniform random when
// pagesPerGroup == 0, otherwise a sequential scan emitting
// pagesPerGroup values per group with random restarts.
func newScan(rng *rand.Rand, groups, pagesPerGroup int, restart float64) func() int {
	if pagesPerGroup <= 0 {
		return func() int { return rng.Intn(groups) }
	}
	group := rng.Intn(groups)
	emitted := 0
	return func() int {
		if restart > 0 && rng.Float64() < restart {
			group = rng.Intn(groups)
			emitted = 0
		}
		if emitted >= pagesPerGroup {
			group = (group + 1) % groups
			emitted = 0
		}
		emitted++
		return group
	}
}

// AntagonistProfile characterizes one memory-intensive co-running
// workload for the contention model (Fig. 11 co-runs SPEC with SFM
// antagonists). The numbers are behavioral profiles, not measurements
// of the licensed SPEC binaries.
type AntagonistProfile struct {
	Name string
	// BWDemandGBps is the workload's standalone memory bandwidth
	// demand.
	BWDemandGBps float64
	// MemBoundShare is the fraction of runtime stalled on memory.
	MemBoundShare float64
	// LLCSensitivity is how strongly runtime reacts to last-level
	// cache pollution (0..1).
	LLCSensitivity float64
}

// SPECLikeProfiles returns eight memory- and LLC-sensitive workload
// profiles in the spirit of the paper's SPEC job mixes (§8). Values
// are representative of published SPEC CPU 2017 memory behavior.
func SPECLikeProfiles() []AntagonistProfile {
	return []AntagonistProfile{
		{Name: "mcf-like", BWDemandGBps: 8.0, MemBoundShare: 0.55, LLCSensitivity: 0.80},
		{Name: "lbm-like", BWDemandGBps: 12.0, MemBoundShare: 0.65, LLCSensitivity: 0.35},
		{Name: "omnetpp-like", BWDemandGBps: 5.0, MemBoundShare: 0.45, LLCSensitivity: 0.75},
		{Name: "gcc-like", BWDemandGBps: 3.5, MemBoundShare: 0.30, LLCSensitivity: 0.50},
		{Name: "xalancbmk-like", BWDemandGBps: 4.5, MemBoundShare: 0.40, LLCSensitivity: 0.70},
		{Name: "cactuBSSN-like", BWDemandGBps: 9.0, MemBoundShare: 0.50, LLCSensitivity: 0.30},
		{Name: "fotonik3d-like", BWDemandGBps: 11.0, MemBoundShare: 0.60, LLCSensitivity: 0.25},
		{Name: "roms-like", BWDemandGBps: 10.0, MemBoundShare: 0.55, LLCSensitivity: 0.30},
	}
}

// ZipfAccess generates a Zipf-distributed page access sequence over n
// pages with skew s > 1, the access-locality pattern of the web
// front-end workload.
type ZipfAccess struct {
	z *rand.Zipf
}

// NewZipfAccess builds a generator over pages [0, n) with exponent s
// (s must be > 1; larger = more skewed).
func NewZipfAccess(seed int64, n int, s float64) *ZipfAccess {
	if s <= 1 {
		s = 1.01
	}
	r := rand.New(rand.NewSource(seed))
	return &ZipfAccess{z: rand.NewZipf(r, s, 1, uint64(n-1))}
}

// Next returns the next page index.
func (z *ZipfAccess) Next() int { return int(z.z.Uint64()) }

// PromotionRateOfTrace computes the observed promotion rate of a far
// memory trace: the fraction of the far-memory footprint that was
// promoted (accessed) during the observation window — §2.1's
// promotion-rate definition, the same quantity costmodel.Params'
// PromotionRate parameterizes and validates to [0, 1]. Both arguments
// count distinct bytes: promotedBytes is the far bytes promoted at
// least once, farBytes the bytes that resided in far memory at any
// point in the window, so promoted ⊆ far and the result is bounded
// [0, 1]. (An earlier readout divided raw promoted bytes — counting
// every re-promotion of the same page — by the instantaneous final
// far footprint and linearly extrapolated a seconds-long window to a
// per-minute figure, reporting rates in the thousands of percent.)
func PromotionRateOfTrace(promotedBytes, farBytes int64) float64 {
	if farBytes == 0 {
		return 0
	}
	return float64(promotedBytes) / float64(farBytes)
}

// ColdFraction implements the Google observation the paper cites
// (§3.1): classifying pages cold after T seconds without access finds
// a cold fraction that decays with T. The model fits the cited data
// point (T = 120 s ⇒ ≈30% cold) with an exponential working-set
// decay.
func ColdFraction(coldAfterSec float64) float64 {
	// exp(-t/τ) shaped idleness: fraction of pages idle ≥ t.
	// Calibrated: ColdFraction(120) ≈ 0.30.
	const tau = 100.0
	return math.Exp(-coldAfterSec / tau)
}
