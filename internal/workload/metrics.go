package workload

import "xfm/internal/telemetry"

// Process-wide workload metrics. The promotion-rate gauge is updated
// as the synthetic applications run (each cold-scan epoch of the web
// front-end), so the flight recorder sees the §2.1 promotion rate as a
// trajectory and the health monitor can flag drift outside the
// validated band, not just the end-of-run figure.
var gPromotionRate = telemetry.NewGauge("sfm_promotion_rate",
	"Observed far-memory promotion rate (§2.1): distinct bytes promoted over distinct bytes ever far, so far.")
