package workload

import (
	"math"
	"testing"

	"xfm/internal/compress"
	"xfm/internal/dram"
	"xfm/internal/nma"
	"xfm/internal/sfm"
	"xfm/internal/trace"
)

func TestPromotionTrafficRates(t *testing.T) {
	p := PromotionTraffic{
		SFMCapacityGB: 512, PromotionRate: 1.0,
		Ranks: 16, PageBytes: 4096, Groups: 8192, Seed: 1,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Footnote 1: 8.5 GB/s at 100% promotion.
	if gbps := p.SwapGBps(); math.Abs(gbps-8.53) > 0.05 {
		t.Errorf("SwapGBps = %.2f, want ≈8.5", gbps)
	}
	// 2 × 8.53e9/4096 / 16 ranks ≈ 260k ops/s per rank.
	ops := p.PagesPerSecondPerRank()
	if ops < 250e3 || ops > 272e3 {
		t.Errorf("ops/s/rank = %.0f, want ≈260k", ops)
	}
}

func TestPromotionTrafficValidate(t *testing.T) {
	bad := PromotionTraffic{SFMCapacityGB: 0, Ranks: 1, PageBytes: 1, Groups: 1}
	if bad.Validate() == nil {
		t.Error("zero capacity accepted")
	}
	bad = PromotionTraffic{SFMCapacityGB: 1, PromotionRate: 2, Ranks: 1, PageBytes: 1, Groups: 1}
	if bad.Validate() == nil {
		t.Error("promotion 200% accepted")
	}
}

func TestStreamArrivalsOrderedAndBounded(t *testing.T) {
	p := PromotionTraffic{
		SFMCapacityGB: 512, PromotionRate: 0.5,
		Ranks: 16, PageBytes: 4096, Groups: 8192, Seed: 3,
	}
	dur := 10 * dram.Millisecond
	next := p.Stream(dur)
	var prev dram.Ps
	n := 0
	kinds := map[nma.OpKind]int{}
	for {
		req, ok := next()
		if !ok {
			break
		}
		if req.Arrive < prev {
			t.Fatal("arrivals not ordered")
		}
		if req.Arrive > dur {
			t.Fatal("arrival beyond duration")
		}
		if req.SrcGroup < 0 || req.SrcGroup >= 8192 {
			t.Fatal("bad group")
		}
		prev = req.Arrive
		kinds[req.Kind]++
		n++
	}
	// Expected arrivals: rate × duration ≈ 130k/s × 0.01 s = 1300.
	want := p.PagesPerSecondPerRank() * 0.01
	if float64(n) < want*0.8 || float64(n) > want*1.2 {
		t.Errorf("arrivals = %d, want ≈%.0f", n, want)
	}
	if kinds[nma.CompressOp] == 0 || kinds[nma.DecompressOp] == 0 {
		t.Error("stream should mix compress and decompress ops")
	}
}

func TestStreamDeterministic(t *testing.T) {
	p := PromotionTraffic{SFMCapacityGB: 64, PromotionRate: 0.2, Ranks: 4, PageBytes: 4096, Groups: 8192, Seed: 9}
	collect := func() []nma.Request {
		var out []nma.Request
		next := p.Stream(dram.Millisecond)
		for {
			r, ok := next()
			if !ok {
				return out
			}
			out = append(out, r)
		}
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestSPECLikeProfiles(t *testing.T) {
	ps := SPECLikeProfiles()
	if len(ps) != 8 {
		t.Fatalf("profiles = %d, want 8 (the paper co-runs 8 SPEC workloads)", len(ps))
	}
	for _, p := range ps {
		if p.BWDemandGBps <= 0 || p.MemBoundShare <= 0 || p.MemBoundShare > 1 ||
			p.LLCSensitivity < 0 || p.LLCSensitivity > 1 {
			t.Errorf("%s: implausible profile %+v", p.Name, p)
		}
	}
}

func TestZipfAccessSkew(t *testing.T) {
	z := NewZipfAccess(1, 1000, 1.3)
	counts := map[int]int{}
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	// Page 0 must be the hottest and the head must dominate.
	head := 0
	for i := 0; i < 10; i++ {
		head += counts[i]
	}
	if counts[0] < counts[500] {
		t.Error("Zipf head not hotter than tail")
	}
	if float64(head)/100000 < 0.3 {
		t.Errorf("top-10 pages got %.1f%% of accesses, want ≥ 30%%", float64(head)/1000)
	}
}

func TestColdFractionMatchesGoogleObservation(t *testing.T) {
	// §3.1: cold-after-120s detects over 30% of memory as cold.
	got := ColdFraction(120)
	if got < 0.28 || got > 0.35 {
		t.Errorf("ColdFraction(120) = %.3f, want ≈0.30", got)
	}
	if ColdFraction(0) != 1 {
		t.Error("ColdFraction(0) should be 1")
	}
	if ColdFraction(1000) > ColdFraction(10) {
		t.Error("cold fraction should decay with threshold")
	}
}

func TestPromotionRateOfTrace(t *testing.T) {
	// 102.4 GB of distinct pages promoted out of 512 GB that went far
	// = 20% of far memory accessed (§2.1).
	promoted := int64(102.4e9)
	far := int64(512e9)
	got := PromotionRateOfTrace(promoted, far)
	if math.Abs(got-0.20) > 0.001 {
		t.Errorf("promotion rate = %.3f, want 0.20", got)
	}
	if PromotionRateOfTrace(1, 0) != 0 {
		t.Error("zero far bytes should yield 0")
	}
}

func TestWebFrontendPromotionRateBounded(t *testing.T) {
	// The §2.1 promotion rate is a fraction of the far-memory footprint
	// — distinct pages over distinct pages — so it can never exceed
	// 100%. (The pre-fix readout reported thousands of percent.)
	w := DefaultWebFrontend()
	w.Queries = 1500
	res, err := w.Run(sfm.NewCPUBackend(compress.NewLZFast(), 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.PromotionRate < 0 || res.PromotionRate > 1 {
		t.Fatalf("promotion rate %.3f outside [0, 1]", res.PromotionRate)
	}
	if res.PromotionRate == 0 {
		t.Fatal("workload with demand faults should observe a nonzero promotion rate")
	}
}

func TestWebFrontendProducesTrace(t *testing.T) {
	w := DefaultWebFrontend()
	w.Queries = 1500
	backend := sfm.NewCPUBackend(compress.NewLZFast(), 0)
	res, err := w.Run(backend)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no swap events generated")
	}
	ops := map[trace.Op]int{}
	var prev int64
	for _, r := range res.Trace {
		if r.AtPs < prev {
			t.Fatal("trace not time-ordered")
		}
		prev = r.AtPs
		ops[r.Op]++
	}
	if ops[trace.SwapOut] == 0 {
		t.Error("no swap-outs in trace")
	}
	if ops[trace.SwapIn] == 0 {
		t.Error("no demand swap-ins in trace")
	}
	if ops[trace.Prefetch] == 0 {
		t.Error("no prefetches in trace (phase shifts should prefetch)")
	}
	if res.HeapStats.DemandFaults == 0 {
		t.Error("workload generated no faults")
	}
	if res.BackendStats.SwapOuts == 0 {
		t.Error("backend saw no swap-outs")
	}
	if res.PromotionRate <= 0 {
		t.Error("promotion rate not computed")
	}
}

func TestWebFrontendDeterministic(t *testing.T) {
	w := DefaultWebFrontend()
	w.Queries = 600
	run := func() Result {
		res, err := w.Run(sfm.NewCPUBackend(compress.NewLZFast(), 0))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a.Trace), len(b.Trace))
	}
	if a.HeapStats != b.HeapStats {
		t.Errorf("heap stats differ: %+v vs %+v", a.HeapStats, b.HeapStats)
	}
}

func TestWebFrontendRejectsBadConfig(t *testing.T) {
	w := DefaultWebFrontend()
	w.Pages = 0
	if _, err := w.Run(sfm.NewCPUBackend(compress.NewLZFast(), 0)); err == nil {
		t.Error("zero pages accepted")
	}
}

func BenchmarkWebFrontend(b *testing.B) {
	w := DefaultWebFrontend()
	w.Queries = 500
	for i := 0; i < b.N; i++ {
		if _, err := w.Run(sfm.NewCPUBackend(compress.NewLZFast(), 0)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBurstinessValidation(t *testing.T) {
	base := PromotionTraffic{SFMCapacityGB: 64, PromotionRate: 0.2, Ranks: 4, PageBytes: 4096, Groups: 8192}
	bad := base
	bad.Burstiness = 1.0
	if bad.Validate() == nil {
		t.Error("burstiness 1.0 accepted")
	}
	bad = base
	bad.Burstiness = 0.5 // missing period
	if bad.Validate() == nil {
		t.Error("burstiness without period accepted")
	}
	ok := base
	ok.Burstiness = 0.5
	ok.BurstPeriod = dram.Millisecond
	if err := ok.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBurstyStreamKeepsMeanRate(t *testing.T) {
	count := func(burst float64) int {
		p := PromotionTraffic{
			SFMCapacityGB: 512, PromotionRate: 0.5,
			Ranks: 16, PageBytes: 4096, Groups: 8192, Seed: 4,
			Burstiness: burst, BurstPeriod: dram.Millisecond,
		}
		n := 0
		next := p.Stream(100 * dram.Millisecond)
		for {
			if _, ok := next(); !ok {
				return n
			}
			n++
		}
	}
	smooth := count(0)
	bursty := count(0.8)
	ratio := float64(bursty) / float64(smooth)
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("bursty stream mean rate off: %d vs %d (ratio %.2f)", bursty, smooth, ratio)
	}
}

func TestBurstinessIncreasesFallbacks(t *testing.T) {
	// §3.2's "bursty swap ins and outs": at the same mean load near
	// the service knee, burstier arrivals overflow the SPM/queue more.
	run := func(burst float64) float64 {
		cfg := nma.DefaultConfig(dram.Device32Gb)
		cfg.SPMBytes = 1 << 20
		cfg.AccessesPerTRFC = 2
		cfg.QueueDepth = 2048
		sim := nma.NewSim(cfg)
		p := PromotionTraffic{
			SFMCapacityGB: 512, PromotionRate: 1.0,
			Ranks: 12, PageBytes: 4096, Groups: 8192, Seed: 7,
			PagesPerGroup: 2, RestartProb: 1.0 / 256,
			DstAheadGroups: 5000, TREFI: cfg.Timings.TREFI,
			Burstiness: burst,
		}
		if burst > 0 {
			p.BurstPeriod = 20 * dram.Millisecond
		}
		windows := 2 * 8192
		sim.RunWindows(windows, p.Stream(dram.Ps(windows)*cfg.Timings.TREFI))
		return sim.Stats().FallbackRate()
	}
	smooth := run(0)
	bursty := run(0.9)
	if bursty < smooth {
		t.Errorf("bursty fallback rate %.4f below smooth %.4f", bursty, smooth)
	}
}
