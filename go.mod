module xfm

go 1.22
