// Command lzbench benchmarks the registered compression codecs over
// the synthetic corpora — the reproduction's stand-in for the lzbench
// runs the paper's artifact uses (Appendix A). It reports ratio,
// compression and decompression throughput per (codec, corpus) pair.
//
// Usage:
//
//	lzbench [-size BYTES] [-page BYTES] [-codecs csv] [corpus ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"xfm/internal/compress"
	"xfm/internal/corpus"
	"xfm/internal/stats"
)

func main() {
	size := flag.Int("size", 1<<20, "bytes per corpus")
	page := flag.Int("page", 4096, "compression granularity (0 = whole corpus)")
	codecsFlag := flag.String("codecs", "", "comma-separated codec names (default: all)")
	flag.Parse()

	names := flag.Args()
	if len(names) == 0 {
		names = corpus.Names()
	}
	var codecs []compress.Codec
	if *codecsFlag == "" {
		for _, n := range compress.Names() {
			c, _ := compress.Lookup(n)
			codecs = append(codecs, c)
		}
	} else {
		for _, n := range strings.Split(*codecsFlag, ",") {
			c, err := compress.Lookup(strings.TrimSpace(n))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			codecs = append(codecs, c)
		}
	}

	t := stats.NewTable("lzbench — page-granular codec comparison",
		"corpus", "codec", "ratio", "comp MB/s", "decomp MB/s")
	for _, name := range names {
		gen, err := corpus.Get(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		data := gen(1, *size)
		var chunks [][]byte
		if *page > 0 {
			chunks = corpus.Pages(data, *page)
		} else {
			chunks = [][]byte{data}
		}
		for _, c := range codecs {
			ratio, compMBs, decompMBs, err := benchCodec(c, chunks)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s/%s: %v\n", name, c.Name(), err)
				os.Exit(1)
			}
			t.AddRow(name, c.Name(),
				fmt.Sprintf("%.2f", ratio),
				fmt.Sprintf("%.0f", compMBs),
				fmt.Sprintf("%.0f", decompMBs))
		}
	}
	fmt.Print(t.String())
}

func benchCodec(c compress.Codec, chunks [][]byte) (ratio, compMBs, decompMBs float64, err error) {
	var orig, stored int
	var compTime, decompTime time.Duration
	var compBuf, outBuf []byte
	compressed := make([][]byte, len(chunks))

	start := time.Now()
	for i, ch := range chunks {
		compBuf = c.Compress(compBuf[:0], ch)
		compressed[i] = append([]byte(nil), compBuf...)
		orig += len(ch)
		stored += len(compBuf)
	}
	compTime = time.Since(start)

	start = time.Now()
	for i, ch := range chunks {
		outBuf, err = c.Decompress(outBuf[:0], compressed[i])
		if err != nil {
			return 0, 0, 0, err
		}
		if len(outBuf) != len(ch) {
			return 0, 0, 0, fmt.Errorf("round trip length mismatch")
		}
	}
	decompTime = time.Since(start)

	ratio = float64(orig) / float64(stored)
	compMBs = float64(orig) / compTime.Seconds() / 1e6
	decompMBs = float64(orig) / decompTime.Seconds() / 1e6
	return ratio, compMBs, decompMBs, nil
}
