// Command costmodel explores the §3 first-order DFM-vs-SFM cost and
// carbon model (EQ1–EQ5) from the command line.
//
// Usage:
//
//	costmodel [-capacity GB] [-promotion frac] [-years N] [-step Y]
package main

import (
	"flag"
	"fmt"
	"os"

	"xfm/internal/costmodel"
	"xfm/internal/stats"
)

func main() {
	capacity := flag.Float64("capacity", 512, "far memory capacity in GB")
	promotion := flag.Float64("promotion", 0.20, "promotion rate (fraction of far memory accessed per minute)")
	years := flag.Float64("years", 10, "horizon in years")
	step := flag.Float64("step", 1, "sweep step in years")
	sens := flag.Bool("sensitivity", false, "print a ±20%% parameter sensitivity (tornado) table and exit")
	flag.Parse()

	p := costmodel.DefaultParams()
	p.ExtraGB = *capacity
	p.PromotionRate = *promotion
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *sens {
		t := stats.NewTable("Break-even sensitivity (DRAM-DFM cost, ±20% per parameter)",
			"parameter", "-20% (years)", "+20% (years)", "spread")
		for _, r := range costmodel.SensitivityOf(p, 0.2, 60) {
			fmtY := func(y float64, ok bool) string {
				if !ok {
					return "none"
				}
				return fmt.Sprintf("%.1f", y)
			}
			t.AddRow(r.Param, fmtY(r.LowYears, r.LowOK), fmtY(r.HighYears, r.HighOK),
				fmt.Sprintf("%.1f", r.Spread))
		}
		fmt.Print(t.String())
		return
	}

	fmt.Printf("Far memory: %.0f GB at %.0f%% promotion (%.1f GB/min swapped, %.2f GB/s)\n",
		p.ExtraGB, p.PromotionRate*100, p.GBSwappedPerMin(), p.GBSwappedPerMin()/60)
	fmt.Printf("CPU cycles needed: %.2f sockets; compression power: %.0f W\n\n",
		p.CPUNeededFraction(), p.CompressionWatts())

	t := stats.NewTable("Cumulative cost ($) and emissions (kgCO2eq)",
		"year", "SFM $", "DRAM-DFM $", "PMem-DFM $", "SFM CO2", "DRAM-DFM CO2", "PMem-DFM CO2")
	for y := 0.0; y <= *years; y += *step {
		t.AddRow(
			fmt.Sprintf("%.1f", y),
			fmt.Sprintf("%.0f", p.SFMCost(y)),
			fmt.Sprintf("%.0f", p.DFMCost(costmodel.DRAM, y)),
			fmt.Sprintf("%.0f", p.DFMCost(costmodel.PMem, y)),
			fmt.Sprintf("%.0f", p.SFMEmission(y)),
			fmt.Sprintf("%.0f", p.DFMEmission(costmodel.DRAM, y)),
			fmt.Sprintf("%.0f", p.DFMEmission(costmodel.PMem, y)),
		)
	}
	fmt.Print(t.String())

	fmt.Println()
	report := func(label string, tech costmodel.MemoryTech, f func(costmodel.MemoryTech, float64) (float64, bool)) {
		if y, ok := f(tech, 50); ok {
			fmt.Printf("%s: %.1f years\n", label, y)
		} else {
			fmt.Printf("%s: none within 50 years\n", label)
		}
	}
	report("Cost break-even vs DRAM-DFM", costmodel.DRAM, p.CostBreakEvenYears)
	report("Cost break-even vs PMem-DFM", costmodel.PMem, p.CostBreakEvenYears)
	report("Emission break-even vs DRAM-DFM", costmodel.DRAM, p.EmissionBreakEvenYears)
	report("Emission break-even vs PMem-DFM", costmodel.PMem, p.EmissionBreakEvenYears)
	fmt.Printf("Integrated accelerator beneficial above %.1f%% promotion\n",
		p.AcceleratorBeneficialPromotion()*100)
}
