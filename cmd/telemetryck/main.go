// Command telemetryck validates observability artifacts produced by
// xfmbench/dramsim: a Prometheus text-exposition metrics file, a
// Chrome trace-event JSON file, and a flight-recorder time-series
// dump. CI runs it after a smoke benchmark to keep the telemetry
// pipeline from silently rotting.
//
// Usage:
//
//	telemetryck [-metrics FILE] [-trace FILE] [-require name,name,...]
//	            [-require-nesting] [-timeseries FILE]
//	            [-require-series name,name,...] [-diff FILE,FILE]
//
// -require lists metric names that must appear with at least one
// sample. -require-nesting demands that the trace contains at least one
// NMA compress/decompress span strictly nested inside a refresh-window
// span on the same track (the paper's core claim, rendered on the
// timeline). -timeseries validates a dump written by -timeseries-out:
// schema version, strictly monotonic timestamps within each series,
// non-negative counter-kind deltas, and (via -require-series) the
// presence of named series with at least one point.
//
// -diff A,B is timeseriesdiff mode: compare two -timeseries-out dumps
// series-by-series and report the first divergent window of each,
// exiting nonzero on any difference. Sim-time recordings are
// bit-deterministic, so CI uses this to prove the NMA engine's idle
// fast-forward produces recordings identical to brute window stepping
// (xfmbench -nma-stepped; DESIGN §6b).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"xfm/internal/telemetry"
)

// defaultRequiredMetrics and defaultRequiredSeries are the telemetry
// contract between the benchmark binaries and CI: the metrics every
// smoke run must expose with at least one sample, and the series every
// flight recording must carry. They are the -require/-require-series
// flag defaults, and xfmlint's telemetry-contract rule extracts them
// from this file's AST to verify each name has a live registration —
// a ghost requirement here fails the lint build, not the smoke run.
var defaultRequiredMetrics = []string{
	"sfm_swap_outs_total",
	"xfm_offloads_total",
	"nma_offload_latency_ps",
	"nma_slot_utilization",
	"xfm_fallback_rate",
	"xfm_fallbacks_total",
	"xfm_degraded_mode",
}

var defaultRequiredSeries = []string{
	"xfm_offloads_total",
	"nma_windows_total",
	"nma_slot_utilization",
	"sfm_promotion_rate",
	"xfm_degraded_mode",
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "telemetryck: "+format+"\n", args...)
	os.Exit(1)
}

// checkMetrics parses a Prometheus text-format file: every non-comment
// line must be `name{labels} value` or `name value`, every HELP/TYPE
// comment well-formed. Returns the set of sample metric names, with
// histogram suffixes (_bucket/_sum/_count) folded onto the base name.
func checkMetrics(path string) map[string]int {
	f, err := os.Open(path)
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()

	names := map[string]int{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.Fields(line)
			if len(parts) < 4 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				fail("%s:%d: malformed comment %q", path, lineNo, line)
			}
			continue
		}
		// Sample line: name[{label="value"}] value
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if name == "" {
			fail("%s:%d: empty metric name", path, lineNo)
		}
		rest := line[len(name):]
		if i := strings.LastIndex(rest, " "); i >= 0 {
			val := rest[i+1:]
			if val == "" {
				fail("%s:%d: missing value", path, lineNo)
			}
		} else {
			fail("%s:%d: no value on sample line", path, lineNo)
		}
		for _, suf := range []string{"_bucket", "_sum", "_count", "_p50", "_p95", "_p99"} {
			if strings.HasSuffix(name, suf) {
				name = strings.TrimSuffix(name, suf)
				break
			}
		}
		names[name]++
	}
	if err := sc.Err(); err != nil {
		fail("%s: %v", path, err)
	}
	if len(names) == 0 {
		fail("%s: no samples found", path)
	}
	return names
}

// traceEvent is the subset of the Chrome trace-event schema we check.
type traceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// checkTrace parses the Chrome trace JSON and, when requireNesting is
// set, verifies at least one cat="nma" span lies strictly inside a
// refresh-window span on the same tid.
func checkTrace(path string, requireNesting bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		fail("%s: invalid JSON: %v", path, err)
	}
	if len(tf.TraceEvents) == 0 {
		fail("%s: no trace events", path)
	}
	var windows, nmaSpans []traceEvent
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		switch {
		case ev.Name == "refresh-window":
			windows = append(windows, ev)
		case ev.Cat == "nma":
			nmaSpans = append(nmaSpans, ev)
		}
	}
	if !requireNesting {
		fmt.Printf("trace ok: %d events\n", len(tf.TraceEvents))
		return
	}
	if len(windows) == 0 {
		fail("%s: no refresh-window spans", path)
	}
	if len(nmaSpans) == 0 {
		fail("%s: no nma spans", path)
	}
	// Timestamps are picoseconds rendered as fractional microseconds, so
	// spans that share a window's edge can differ by a float ulp; one
	// picosecond of slack keeps the containment test exact in spirit.
	const eps = 1e-6
	nested := 0
	for _, s := range nmaSpans {
		for _, w := range windows {
			if s.Tid == w.Tid && s.Ts >= w.Ts-eps && s.Ts+s.Dur <= w.Ts+w.Dur+eps {
				nested++
				break
			}
		}
	}
	if nested == 0 {
		fail("%s: no nma span nests inside a refresh-window span", path)
	}
	fmt.Printf("trace ok: %d events, %d refresh windows, %d/%d nma spans nested\n",
		len(tf.TraceEvents), len(windows), nested, len(nmaSpans))
}

// The time-series mirror structs are deliberately independent of
// internal/telemetry: the validator re-declares the artifact contract
// so a producer-side schema drift fails here instead of silently
// round-tripping.
type tsPoint struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

type tsSeries struct {
	Name    string    `json:"name"`
	Kind    string    `json:"kind"`
	Metric  string    `json:"metric"`
	Dropped int64     `json:"dropped"`
	Points  []tsPoint `json:"points"`
}

type tsDump struct {
	Schema   int        `json:"schema"`
	Clock    string     `json:"clock"`
	SimEvery int64      `json:"sim_every"`
	Samples  int        `json:"samples"`
	Ticks    int64      `json:"ticks"`
	Series   []tsSeries `json:"series"`
}

// checkTimeseries validates a flight-recorder dump: schema version 1,
// a known clock domain, at least one sample, strictly monotonic
// timestamps within every series, and non-negative values on
// counter-kind series (per-window deltas of monotone counters must
// never run backwards). requireSeries lists series names that must be
// present with at least one point.
func checkTimeseries(path, requireSeries string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var d tsDump
	if err := json.Unmarshal(data, &d); err != nil {
		fail("%s: invalid JSON: %v", path, err)
	}
	if d.Schema != 1 {
		fail("%s: unsupported schema %d, want 1", path, d.Schema)
	}
	if d.Clock != "sim-ps" && d.Clock != "wall-ns" {
		fail("%s: unknown clock domain %q", path, d.Clock)
	}
	if d.Samples <= 0 {
		fail("%s: no samples recorded", path)
	}
	if len(d.Series) == 0 {
		fail("%s: no series recorded", path)
	}
	points := 0
	byName := map[string]tsSeries{}
	for _, s := range d.Series {
		if s.Name == "" || s.Kind == "" || s.Metric == "" {
			fail("%s: series with empty name/kind/metric: %+v", path, s)
		}
		if _, dup := byName[s.Name]; dup {
			fail("%s: duplicate series %q", path, s.Name)
		}
		byName[s.Name] = s
		for i, p := range s.Points {
			points++
			if i > 0 && p.T <= s.Points[i-1].T {
				fail("%s: series %q: non-monotonic timestamp %d after %d (point %d)",
					path, s.Name, p.T, s.Points[i-1].T, i)
			}
			if s.Kind == "counter" && p.V < 0 {
				fail("%s: series %q: negative counter delta %g at t=%d",
					path, s.Name, p.V, p.T)
			}
			if s.Kind == "hist_count" && p.V < 0 {
				fail("%s: series %q: negative windowed count %g at t=%d",
					path, s.Name, p.V, p.T)
			}
		}
	}
	if requireSeries != "" {
		var missing []string
		for _, want := range strings.Split(requireSeries, ",") {
			want = strings.TrimSpace(want)
			if want == "" {
				continue
			}
			if s, ok := byName[want]; !ok || len(s.Points) == 0 {
				missing = append(missing, want)
			}
		}
		if len(missing) > 0 {
			fail("%s: required series missing or empty: %s", path, strings.Join(missing, ", "))
		}
	}
	fmt.Printf("timeseries ok: clock %s, %d samples, %d series, %d points\n",
		d.Clock, d.Samples, len(d.Series), points)
}

// checkDiff is timeseriesdiff mode: load two recordings and report
// every series' first divergent window. Unlike the validators above it
// deliberately reuses internal/telemetry's reader and comparator — the
// diff checks the *engine's* determinism contract, not the artifact
// schema, so both sides must be parsed exactly as the producer wrote
// them.
func checkDiff(arg string) {
	parts := strings.Split(arg, ",")
	if len(parts) != 2 || strings.TrimSpace(parts[0]) == "" || strings.TrimSpace(parts[1]) == "" {
		fail("-diff wants exactly two files: -diff A,B")
	}
	pathA, pathB := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
	read := func(path string) *telemetry.Dump {
		f, err := os.Open(path)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		d, err := telemetry.ReadDump(f)
		if err != nil {
			fail("%s: %v", path, err)
		}
		return d
	}
	a, b := read(pathA), read(pathB)
	diffs := telemetry.DiffDumps(a, b)
	if len(diffs) > 0 {
		for _, d := range diffs {
			fmt.Fprintf(os.Stderr, "telemetryck: diff: %s\n", d)
		}
		fail("%s and %s diverge in %d place(s)", pathA, pathB, len(diffs))
	}
	points := 0
	for _, s := range a.Series {
		points += len(s.Points)
	}
	fmt.Printf("timeseriesdiff ok: %d series, %d samples, %d points identical\n",
		len(a.Series), a.Samples, points)
}

func main() {
	metrics := flag.String("metrics", "", "Prometheus text metrics file to validate")
	traceOut := flag.String("trace", "", "Chrome trace-event JSON file to validate")
	require := flag.String("require", strings.Join(defaultRequiredMetrics, ","), "comma-separated metric names that must be present (\"none\" disables)")
	requireNesting := flag.Bool("require-nesting", false, "require nma spans nested in refresh-window spans")
	timeseries := flag.String("timeseries", "", "flight-recorder time-series dump to validate")
	requireSeries := flag.String("require-series", strings.Join(defaultRequiredSeries, ","), "comma-separated series names that must be present in -timeseries (\"none\" disables)")
	diff := flag.String("diff", "", "compare two comma-separated time-series dumps and report each series' first divergent window")
	flag.Parse()

	if *metrics == "" && *traceOut == "" && *timeseries == "" && *diff == "" {
		fail("nothing to check: pass -metrics, -trace, -timeseries, and/or -diff")
	}
	if *require == "none" {
		*require = ""
	}
	if *requireSeries == "none" {
		*requireSeries = ""
	}
	if *metrics != "" {
		names := checkMetrics(*metrics)
		if *require != "" {
			var missing []string
			for _, want := range strings.Split(*require, ",") {
				want = strings.TrimSpace(want)
				if want != "" && names[want] == 0 {
					missing = append(missing, want)
				}
			}
			if len(missing) > 0 {
				fail("%s: required metrics missing: %s", *metrics, strings.Join(missing, ", "))
			}
		}
		fmt.Printf("metrics ok: %d metric names\n", len(names))
	}
	if *traceOut != "" {
		checkTrace(*traceOut, *requireNesting)
	}
	if *timeseries != "" {
		checkTimeseries(*timeseries, *requireSeries)
	}
	if *diff != "" {
		checkDiff(*diff)
	}
}
