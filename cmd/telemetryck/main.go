// Command telemetryck validates observability artifacts produced by
// xfmbench/dramsim: a Prometheus text-exposition metrics file and a
// Chrome trace-event JSON file. CI runs it after a smoke benchmark to
// keep the telemetry pipeline from silently rotting.
//
// Usage:
//
//	telemetryck [-metrics FILE] [-trace FILE] [-require name,name,...]
//	            [-require-nesting]
//
// -require lists metric names that must appear with at least one
// sample. -require-nesting demands that the trace contains at least one
// NMA compress/decompress span strictly nested inside a refresh-window
// span on the same track (the paper's core claim, rendered on the
// timeline).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "telemetryck: "+format+"\n", args...)
	os.Exit(1)
}

// checkMetrics parses a Prometheus text-format file: every non-comment
// line must be `name{labels} value` or `name value`, every HELP/TYPE
// comment well-formed. Returns the set of sample metric names, with
// histogram suffixes (_bucket/_sum/_count) folded onto the base name.
func checkMetrics(path string) map[string]int {
	f, err := os.Open(path)
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()

	names := map[string]int{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.Fields(line)
			if len(parts) < 4 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				fail("%s:%d: malformed comment %q", path, lineNo, line)
			}
			continue
		}
		// Sample line: name[{label="value"}] value
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if name == "" {
			fail("%s:%d: empty metric name", path, lineNo)
		}
		rest := line[len(name):]
		if i := strings.LastIndex(rest, " "); i >= 0 {
			val := rest[i+1:]
			if val == "" {
				fail("%s:%d: missing value", path, lineNo)
			}
		} else {
			fail("%s:%d: no value on sample line", path, lineNo)
		}
		for _, suf := range []string{"_bucket", "_sum", "_count", "_p50", "_p95", "_p99"} {
			if strings.HasSuffix(name, suf) {
				name = strings.TrimSuffix(name, suf)
				break
			}
		}
		names[name]++
	}
	if err := sc.Err(); err != nil {
		fail("%s: %v", path, err)
	}
	if len(names) == 0 {
		fail("%s: no samples found", path)
	}
	return names
}

// traceEvent is the subset of the Chrome trace-event schema we check.
type traceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// checkTrace parses the Chrome trace JSON and, when requireNesting is
// set, verifies at least one cat="nma" span lies strictly inside a
// refresh-window span on the same tid.
func checkTrace(path string, requireNesting bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		fail("%s: invalid JSON: %v", path, err)
	}
	if len(tf.TraceEvents) == 0 {
		fail("%s: no trace events", path)
	}
	var windows, nmaSpans []traceEvent
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		switch {
		case ev.Name == "refresh-window":
			windows = append(windows, ev)
		case ev.Cat == "nma":
			nmaSpans = append(nmaSpans, ev)
		}
	}
	if !requireNesting {
		fmt.Printf("trace ok: %d events\n", len(tf.TraceEvents))
		return
	}
	if len(windows) == 0 {
		fail("%s: no refresh-window spans", path)
	}
	if len(nmaSpans) == 0 {
		fail("%s: no nma spans", path)
	}
	// Timestamps are picoseconds rendered as fractional microseconds, so
	// spans that share a window's edge can differ by a float ulp; one
	// picosecond of slack keeps the containment test exact in spirit.
	const eps = 1e-6
	nested := 0
	for _, s := range nmaSpans {
		for _, w := range windows {
			if s.Tid == w.Tid && s.Ts >= w.Ts-eps && s.Ts+s.Dur <= w.Ts+w.Dur+eps {
				nested++
				break
			}
		}
	}
	if nested == 0 {
		fail("%s: no nma span nests inside a refresh-window span", path)
	}
	fmt.Printf("trace ok: %d events, %d refresh windows, %d/%d nma spans nested\n",
		len(tf.TraceEvents), len(windows), nested, len(nmaSpans))
}

func main() {
	metrics := flag.String("metrics", "", "Prometheus text metrics file to validate")
	traceOut := flag.String("trace", "", "Chrome trace-event JSON file to validate")
	require := flag.String("require", "", "comma-separated metric names that must be present")
	requireNesting := flag.Bool("require-nesting", false, "require nma spans nested in refresh-window spans")
	flag.Parse()

	if *metrics == "" && *traceOut == "" {
		fail("nothing to check: pass -metrics and/or -trace")
	}
	if *metrics != "" {
		names := checkMetrics(*metrics)
		if *require != "" {
			var missing []string
			for _, want := range strings.Split(*require, ",") {
				want = strings.TrimSpace(want)
				if want != "" && names[want] == 0 {
					missing = append(missing, want)
				}
			}
			if len(missing) > 0 {
				fail("%s: required metrics missing: %s", *metrics, strings.Join(missing, ", "))
			}
		}
		fmt.Printf("metrics ok: %d metric names\n", len(names))
	}
	if *traceOut != "" {
		checkTrace(*traceOut, *requireNesting)
	}
}
