// Command xfmbench regenerates every table and figure of the paper's
// evaluation. With no arguments it runs the full suite; pass
// experiment ids (fig1 fig3 fig8 fig11 fig12 table1 table2 table3
// sec32 energy capacity emulator) to run a subset.
//
// Usage:
//
//	xfmbench [-csv] [-list] [-j N] [-metrics-out FILE] [-trace-out FILE]
//	         [-timeseries-out FILE] [-sample-every N] [-sample-wall DUR]
//	         [-pprof ADDR] [-cpuprofile FILE] [-memprofile FILE]
//	         [-bench-json DIR] [-nma-stepped]
//	         [-chaos SPEC] [-seed N] [-chaos-strict]
//	         [experiment ...]
//
// With -bench-json DIR the experiments are skipped; instead the
// swap-path benchmark scenarios run and each result is written as
// DIR/BENCH_<name>.json (pages/s, allocs/op, compression ratio, and a
// per-interval pages/s trajectory). The CI bench gate (cmd/benchgate)
// compares those artifacts against the checked-in bench_baseline.json.
//
// With -timeseries-out FILE the flight recorder samples the default
// metric catalogue every -sample-every refresh windows of simulated
// time and writes the recording (JSON, or CSV when FILE ends in .csv)
// on exit; telemetryck validates it and xfmtop renders it. Under -j
// each parallel simulator records into its own sampler and the per-sim
// rings are merged at dump time, so no simulator's timeline is lost to
// another's.
//
// With -chaos SPEC the experiments are skipped and the deterministic
// fault-injection gate runs instead: the full seed corpus is swapped
// through a backend wired to the injected fault plane (NMA stalls,
// spurious queue-fulls, ECC flips, corrupt streams, refresh storms;
// see internal/fault) and every page is byte-verified on the way back.
// SPEC is a preset ("ci-default", "off"), "site=p[:max]" fields,
// "storm=period:len[:phase]", or "@plan.json"; -seed fixes the
// schedule (two runs with the same spec and seed are bit-identical,
// recordings included), and -chaos-strict additionally requires that
// the run tripped and recovered the circuit breaker and re-served a
// quarantined page. A lost page always exits nonzero.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"xfm/internal/bench"
	"xfm/internal/chaos"
	"xfm/internal/experiments"
	"xfm/internal/nma"
	"xfm/internal/telemetry"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	plot := flag.Bool("plot", false, "append an ASCII bar chart for experiments that provide one")
	list := flag.Bool("list", false, "list available experiments and exit")
	outDir := flag.String("out", "", "also write each experiment's table as CSV into this directory")
	jobs := flag.Int("j", 0, "experiments to run in parallel (0 = GOMAXPROCS, 1 = serial); tables are identical at any setting")
	benchJSON := flag.String("bench-json", "", "run the swap-path bench scenarios and write BENCH_*.json artifacts into this directory (skips the experiments)")
	nmaStepped := flag.Bool("nma-stepped", false, "disable the NMA idle fast-forward and step every refresh window (slow; for proving recordings are identical either way)")
	chaosSpec := flag.String("chaos", "", "run the fault-injection gate with this chaos spec (preset, site=p[:max] fields, storm=period:len, or @plan.json) instead of the experiments")
	seed := flag.Int64("seed", 1, "deterministic seed for the -chaos fault schedule and corpus data")
	chaosStrict := flag.Bool("chaos-strict", false, "with -chaos: also require the run to trip and recover the circuit breaker and re-serve a quarantined page")
	var tel telemetry.CLI
	tel.RegisterFlags(flag.CommandLine)
	flag.Parse()

	// Observable results are identical with and without the
	// fast-forward; CI records a run each way and diffs the recordings
	// with `telemetryck -diff` to prove it (DESIGN §6b).
	nma.SetFastForward(!*nmaStepped)

	if err := tel.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Multi-sim recording: with parallel experiments each simulator
	// gets its own flight-recorder sampler, merged at dump time.
	if *jobs != 1 {
		telemetry.DefaultSampler().SetFanOut(true)
	}

	if *chaosSpec != "" {
		res, err := chaos.Run(chaos.Config{Spec: *chaosSpec, Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(res)
		gateErr := res.Gate(*chaosStrict)
		if err := tel.Finish(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if gateErr != nil {
			fmt.Fprintln(os.Stderr, gateErr)
			os.Exit(1)
		}
		return
	}

	if *benchJSON != "" {
		results, err := bench.RunAll()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := bench.WriteJSON(*benchJSON, results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, r := range results {
			fmt.Printf("%-24s %10.0f pages/s  %6.0f allocs/op  ratio %.2f\n",
				r.Name, r.PagesPerSec, r.AllocsPerOp, r.CompressionRatio)
		}
		if err := tel.Finish(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	if flag.NArg() == 0 {
		selected = experiments.All()
	} else {
		for _, id := range flag.Args() {
			e, err := experiments.Lookup(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	// Experiments run in parallel (pure functions of their inputs) but
	// results print in the selected order, so the output is identical
	// to a serial run modulo per-experiment timings.
	for _, r := range experiments.RunExperiments(selected, *jobs) {
		e, tbl := r.Experiment, r.Table
		if *outDir != "" {
			path := filepath.Join(*outDir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(tbl.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *csv {
			fmt.Printf("# %s\n%s\n", e.Title, tbl.CSV())
		} else {
			fmt.Printf("=== %s ===\n%s", e.Title, tbl.String())
			if *plot && e.Plot != nil {
				fmt.Printf("\n%s", e.Plot())
			}
			fmt.Printf("(%s in %v)\n\n", e.ID, r.Elapsed.Round(time.Millisecond))
		}
	}

	if err := tel.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
