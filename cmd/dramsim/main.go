// Command dramsim replays a swap trace against the DRAM timing model
// and reports channel bandwidth, latency, and refresh statistics —
// the standalone front-end to the cycle-approximate simulator (§7).
//
// Usage:
//
//	dramsim [-trace FILE] [-binary] [-channels N] [-ranks N] [-device 8|16|32]
//	        [-metrics-out FILE] [-trace-out FILE] [-timeseries-out FILE]
//	        [-sample-every N] [-sample-wall DUR] [-pprof ADDR]
//	        [-cpuprofile FILE] [-memprofile FILE]
//
// Without -trace it generates the default web front-end trace
// internally. -timeseries-out records the flight recorder's metric
// series over the replay (see internal/telemetry and cmd/xfmtop).
package main

import (
	"flag"
	"fmt"
	"os"

	"xfm/internal/compress"
	"xfm/internal/dram"
	"xfm/internal/memctrl"
	"xfm/internal/sfm"
	"xfm/internal/telemetry"
	"xfm/internal/trace"
	"xfm/internal/workload"
)

func main() {
	traceFile := flag.String("trace", "", "trace file to replay (default: generate internally)")
	binary := flag.Bool("binary", false, "trace file uses the binary encoding")
	channels := flag.Int("channels", 4, "memory channels")
	ranks := flag.Int("ranks", 2, "ranks per channel")
	device := flag.Int("device", 32, "DRAM chip capacity in Gbit (8, 16, 32)")
	queued := flag.Bool("queued", false, "route requests through the FR-FCFS queued controller")
	var tel telemetry.CLI
	tel.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if err := tel.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var dev dram.DeviceConfig
	switch *device {
	case 8:
		dev = dram.Device8Gb
	case 16:
		dev = dram.Device16Gb
	case 32:
		dev = dram.Device32Gb
	default:
		fmt.Fprintf(os.Stderr, "unknown device %dGb\n", *device)
		os.Exit(2)
	}

	var records []trace.Record
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		var tr *trace.Reader
		if *binary {
			tr = trace.NewBinaryReader(f)
		} else {
			tr = trace.NewReader(f)
		}
		records, err = trace.ReadAll(tr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		w := workload.DefaultWebFrontend()
		res, err := w.Run(sfm.NewCPUBackend(compress.NewLZFast(), 0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		records = res.Trace
	}

	tm := dram.DDR5_3200().WithTRFC(dev.TRFC)
	mapping := memctrl.SkylakeMapping(*channels, *ranks, dev)
	var ctl *memctrl.Controller
	var qctl *memctrl.QueuedController
	if *queued {
		qctl = memctrl.NewQueuedController(mapping, tm)
		ctl = qctl.Inner()
	} else {
		ctl = memctrl.NewController(mapping, tm)
	}

	var last dram.Ps
	for i, r := range records {
		addr := (int64(i) * 4096) % (ctl.Map.TotalBytes() - 4096)
		kind := dram.Read
		if r.Op == trace.SwapOut {
			kind = dram.Write
		}
		size := int(r.Bytes)
		if size <= 0 {
			size = 4096
		}
		req := memctrl.Request{Addr: addr, Size: size, Kind: kind, Stream: 0, At: r.AtPs}
		var done dram.Ps
		if qctl != nil {
			for !qctl.Enqueue(req) {
				qctl.ServeOne() // back-pressure: drain one before retrying
			}
			done, _ = qctl.ServeOne()
		} else {
			done = ctl.Submit(req)
		}
		if done > last {
			last = done
		}
	}
	if qctl != nil {
		if d := qctl.Drain(); d > last {
			last = d
		}
		qs := qctl.Stats()
		fmt.Printf("queued controller: %d reads, %d writes, %d FR reorders, %d drains\n",
			qs.ReadsServed, qs.WritesServed, qs.FRReorders, qs.DrainEntries)
	}

	read, written := ctl.TotalBytes()
	st := ctl.Stream(0)
	fmt.Printf("replayed %d records over %d channels × %d ranks (%s, tRFC %dns)\n",
		len(records), *channels, *ranks, dev.Name, dev.TRFC/dram.Nanosecond)
	fmt.Printf("bytes: %d read, %d written\n", read, written)
	fmt.Printf("bus utilization: %.2f%%\n", ctl.TotalBusUtilization(last)*100)
	fmt.Printf("mean access latency: %.1f ns (max %.1f ns)\n",
		st.MeanLatencyNs(), float64(st.MaxLatPs)/float64(dram.Nanosecond))
	if st.RowAccesses > 0 {
		fmt.Printf("row buffer hit rate: %.1f%%\n", float64(st.RowHits)/float64(st.RowAccesses)*100)
	}
	refs := int64(0)
	for c := 0; c < *channels; c++ {
		for rk := 0; rk < *ranks; rk++ {
			refs += ctl.Channel(c).Rank(rk).Stats().REFs
		}
	}
	fmt.Printf("refresh commands issued: %d\n", refs)

	if err := tel.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
