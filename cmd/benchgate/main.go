// Command benchgate compares BENCH_*.json artifacts (written by
// `xfmbench -bench-json DIR`) against the checked-in baseline and
// exits nonzero when any scenario's pages/s regresses by more than the
// allowed fraction. It is the CI "bench smoke + JSON artifact" gate.
//
// Usage:
//
//	benchgate [-baseline bench_baseline.json] [-dir DIR] [-max-regress 0.20]
package main

import (
	"flag"
	"fmt"
	"os"

	"xfm/internal/bench"
)

func main() {
	baselinePath := flag.String("baseline", "bench_baseline.json", "checked-in baseline file")
	dir := flag.String("dir", "bench-artifacts", "directory holding BENCH_*.json results")
	maxRegress := flag.Float64("max-regress", 0.20, "maximum allowed pages/s regression as a fraction of baseline")
	flag.Parse()

	baseline, err := bench.ReadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	results, err := bench.ReadJSON(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no BENCH_*.json artifacts in %s\n", *dir)
		os.Exit(1)
	}
	// Environment mismatches (GOMAXPROCS above all) make the pages/s
	// comparison meaningless, so shout before the verdict: a gate that
	// "passes" across a core-count change is not a gate.
	if warns := bench.EnvWarnings(baseline, results); len(warns) > 0 {
		fmt.Fprintln(os.Stderr, "benchgate: ============ ENVIRONMENT MISMATCH ============")
		for _, w := range warns {
			fmt.Fprintln(os.Stderr, "benchgate: WARNING:", w)
		}
		fmt.Fprintln(os.Stderr, "benchgate: ==============================================")
	}
	// A run that never reached steady state judges the baseline with a
	// number polluted by warmup or drift — warn, don't fail (short CI
	// runs wobble legitimately).
	for _, w := range bench.SteadyStateWarnings(results) {
		fmt.Fprintln(os.Stderr, "benchgate: WARNING:", w)
	}
	lines, err := bench.Gate(baseline, results, *maxRegress)
	for _, l := range lines {
		fmt.Println(l)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("bench gate passed (%d scenarios, max regression %.0f%%)\n", len(lines), *maxRegress*100)
}
