// Command tracegen runs the synthetic web front-end over a
// far-memory heap and writes its swap-in/out trace (§7's methodology)
// to stdout or a file.
//
// Usage:
//
//	tracegen [-o FILE] [-binary] [-pages N] [-queries N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"xfm/internal/compress"
	"xfm/internal/sfm"
	"xfm/internal/trace"
	"xfm/internal/workload"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	binary := flag.Bool("binary", false, "write the compact binary encoding")
	pages := flag.Int("pages", 512, "data set size in pages")
	queries := flag.Int("queries", 4000, "number of queries to run")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	w := workload.DefaultWebFrontend()
	w.Pages = *pages
	w.Queries = *queries
	w.Seed = *seed

	res, err := w.Run(sfm.NewCPUBackend(compress.NewLZFast(), 0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var sink io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		sink = f
	}
	var tw *trace.Writer
	if *binary {
		tw = trace.NewBinaryWriter(sink)
	} else {
		tw = trace.NewWriter(sink)
	}
	for _, r := range res.Trace {
		if err := tw.Write(r); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := tw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "%d records; faults=%d prefetches=%d promotion=%.1f%%\n",
		tw.Count(), res.HeapStats.DemandFaults, res.HeapStats.PrefetchedPages,
		res.PromotionRate*100)
}
