// Command xfmlint runs the repository's domain static-analysis suite:
// atomic-field, guardedby, hotpath-alloc, and sim-determinism, plus
// //xfm: directive validation. It is wired into CI as a failing gate;
// see DESIGN.md §9 for the rule catalogue and suppression syntax.
//
// Usage:
//
//	xfmlint ./...
//	xfmlint -json ./... > xfmlint.json
package main

import (
	"os"

	"xfm/internal/analysis"
)

func main() {
	os.Exit(analysis.CLIMain(os.Args[1:], os.Stdout, os.Stderr))
}
