// Command corpusgen writes the synthetic Fig. 8 corpora to disk.
//
// Usage:
//
//	corpusgen [-out DIR] [-size BYTES] [-seed N] [corpus ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"xfm/internal/corpus"
)

func main() {
	out := flag.String("out", "corpora", "output directory")
	size := flag.Int("size", 1<<20, "bytes per corpus")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	names := flag.Args()
	if len(names) == 0 {
		names = corpus.Names()
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, name := range names {
		gen, err := corpus.Get(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		path := filepath.Join(*out, name+".bin")
		if err := os.WriteFile(path, gen(*seed, *size), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, *size)
	}
}
