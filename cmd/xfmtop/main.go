// Command xfmtop is a live terminal dashboard for the XFM telemetry
// stack: it renders the flight recorder's time series as sparklines
// and the health monitor's verdict as a panel, top-style, from either
// a running process's debug server or a recorded artifact.
//
// Usage:
//
//	xfmtop [-url http://localhost:6060] [-file timeseries.json]
//	       [-refresh 1s] [-width 60] [-filter substr] [-once]
//	       [-health-exit]
//
// With -url it polls /debug/timeseries and /debug/health every
// -refresh and redraws in place (ANSI clear). With -file it reads a
// recorded dump (written by `xfmbench -timeseries-out`), evaluates the
// default health rules locally, and renders the same view. -once
// renders a single frame without ANSI control codes and exits — the CI
// smoke mode. -health-exit exits 3 when the health verdict is DEGRADED
// or CRITICAL: with -once that is the rendered frame's verdict, in
// live mode the first such poll ends the session, so a script can
// leave xfmtop watching a benchmark and fail the moment health
// degrades.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"strings"
	"time"

	"xfm/internal/telemetry"
)

var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// sparkline renders the last width points scaled to min..max.
func sparkline(pts []telemetry.Point, width int) string {
	if len(pts) == 0 {
		return ""
	}
	if len(pts) > width {
		pts = pts[len(pts)-width:]
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		if p.V < lo {
			lo = p.V
		}
		if p.V > hi {
			hi = p.V
		}
	}
	var b strings.Builder
	for _, p := range pts {
		i := 0
		if hi > lo {
			i = int((p.V - lo) / (hi - lo) * float64(len(sparkLevels)-1))
		} else if p.V != 0 {
			i = len(sparkLevels) / 2
		}
		if i < 0 {
			i = 0
		}
		if i >= len(sparkLevels) {
			i = len(sparkLevels) - 1
		}
		b.WriteRune(sparkLevels[i])
	}
	return b.String()
}

// fmtVal renders a value compactly (counts and rates share columns).
func fmtVal(v float64) string {
	av := math.Abs(v)
	switch {
	case v == math.Trunc(v) && av < 1e7:
		return fmt.Sprintf("%d", int64(v))
	case av >= 1e6 || (av < 1e-3 && av > 0):
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func seriesStats(pts []telemetry.Point) (last, min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		if p.V < min {
			min = p.V
		}
		if p.V > max {
			max = p.V
		}
	}
	if len(pts) > 0 {
		last = pts[len(pts)-1].V
	}
	return last, min, max
}

// render writes one full frame.
func render(w *strings.Builder, d *telemetry.Dump, h telemetry.Health, src string, width int, filter string) {
	clockDesc := d.Clock
	if d.SimEvery > 0 {
		clockDesc = fmt.Sprintf("%s · every %d windows", d.Clock, d.SimEvery)
	}
	fmt.Fprintf(w, "xfmtop — XFM flight recorder · %s\n", src)
	fmt.Fprintf(w, "clock %s · %d samples · %d ticks\n\n", clockDesc, d.Samples, d.Ticks)

	fmt.Fprintf(w, "HEALTH: %s\n", h.Status)
	for _, c := range h.Checks {
		mark, detail := " ok", ""
		switch {
		case c.Firing:
			mark = "FIRE"
			detail = fmt.Sprintf("value %s vs threshold %s [%s]",
				fmtVal(c.Value), fmtVal(c.Threshold), c.Severity)
		case !c.Active:
			mark = "  --"
			detail = "(no data)"
		default:
			detail = fmt.Sprintf("value %s, threshold %s", fmtVal(c.Value), fmtVal(c.Threshold))
		}
		fmt.Fprintf(w, "  %-4s %-28s %s\n", mark, c.Rule, detail)
	}
	w.WriteString("\n")

	fmt.Fprintf(w, "%-34s %10s %10s %10s  %s\n", "SERIES", "last", "min", "max", "trajectory")
	for _, s := range d.Series {
		if filter != "" && !strings.Contains(s.Name, filter) {
			continue
		}
		if len(s.Points) == 0 {
			continue
		}
		last, min, max := seriesStats(s.Points)
		fmt.Fprintf(w, "%-34s %10s %10s %10s  %s\n",
			s.Name, fmtVal(last), fmtVal(min), fmtVal(max), sparkline(s.Points, width))
	}
}

// fetchJSON GETs url into v.
func fetchJSON(client *http.Client, url string, v interface{}) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	// /debug/health answers 503 on CRITICAL; the body is still the
	// verdict we want to render.
	return json.NewDecoder(resp.Body).Decode(v)
}

func main() {
	url := flag.String("url", "", "poll a live debug server at this base URL (e.g. http://localhost:6060)")
	file := flag.String("file", "", "render a recorded time-series dump instead of polling")
	refresh := flag.Duration("refresh", time.Second, "redraw interval in live mode")
	width := flag.Int("width", 60, "sparkline width in samples")
	filter := flag.String("filter", "", "only show series whose name contains this substring")
	once := flag.Bool("once", false, "render one frame without ANSI control codes and exit (CI mode)")
	healthExit := flag.Bool("health-exit", false, "exit 3 when the health verdict is DEGRADED or CRITICAL (first poll in live mode, the rendered frame with -once)")
	flag.Parse()

	if (*url == "") == (*file == "") {
		fmt.Fprintln(os.Stderr, "xfmtop: pass exactly one of -url or -file")
		os.Exit(2)
	}

	client := &http.Client{Timeout: 5 * time.Second}
	monitor := telemetry.NewMonitor() // default rules, local evaluation

	frame := func() (string, telemetry.Health, error) {
		var d *telemetry.Dump
		var h telemetry.Health
		var src string
		if *file != "" {
			f, err := os.Open(*file)
			if err != nil {
				return "", h, err
			}
			d, err = telemetry.ReadDump(f)
			f.Close()
			if err != nil {
				return "", h, err
			}
			h = monitor.Evaluate(d)
			src = *file
		} else {
			d = &telemetry.Dump{}
			if err := fetchJSON(client, *url+"/debug/timeseries", d); err != nil {
				return "", h, err
			}
			if err := fetchJSON(client, *url+"/debug/health", &h); err != nil {
				// A server predating /debug/health still has series;
				// evaluate locally rather than failing.
				h = monitor.Evaluate(d)
			}
			src = *url
		}
		var b strings.Builder
		render(&b, d, h, src, *width, *filter)
		return b.String(), h, nil
	}

	if *once {
		out, h, err := frame()
		if err != nil {
			fmt.Fprintln(os.Stderr, "xfmtop:", err)
			os.Exit(1)
		}
		fmt.Print(out)
		if *healthExit && h.Code != 0 {
			fmt.Fprintf(os.Stderr, "xfmtop: health %s (-health-exit)\n", h.Status)
			os.Exit(3)
		}
		return
	}

	for {
		out, h, err := frame()
		// ANSI: home cursor, clear to end of screen (less flicker than
		// a full clear).
		fmt.Print("\x1b[H\x1b[2J\x1b[3J")
		if err != nil {
			fmt.Printf("xfmtop: %v (retrying every %v)\n", err, *refresh)
		} else {
			fmt.Print(out)
		}
		// Live watchdog mode: the first DEGRADED/CRITICAL poll ends the
		// session with the same exit code -once uses, so a CI step can
		// leave xfmtop watching a benchmark and fail the build the
		// moment health degrades instead of inspecting one final frame.
		if *healthExit && err == nil && h.Code != 0 {
			fmt.Fprintf(os.Stderr, "xfmtop: health %s (-health-exit)\n", h.Status)
			os.Exit(3)
		}
		time.Sleep(*refresh)
	}
}
