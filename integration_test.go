package xfmbench

import (
	"bytes"
	"testing"

	"xfm/internal/contention"
	"xfm/internal/experiments"

	"xfm/internal/compress"
	"xfm/internal/dataframe"
	"xfm/internal/dram"
	"xfm/internal/memctrl"
	"xfm/internal/memsim"
	"xfm/internal/nma"
	"xfm/internal/sfm"
	"xfm/internal/trace"
	"xfm/internal/workload"
	"xfm/internal/xfm"
)

// TestEndToEndMultiChannelAnalytics drives the whole stack at once:
// a DataFrame over a traced far-memory heap whose backend is the
// 4-DIMM multi-channel XFM group (per-DIMM NMAs, window-limited
// compression, same-offset placement). Content integrity, trace
// consistency, and offload accounting must all hold together.
func TestEndToEndMultiChannelAnalytics(t *testing.T) {
	drivers := make([]*xfm.Driver, 4)
	for i := range drivers {
		drivers[i] = xfm.NewDriver(nma.NewSim(nma.DefaultConfig(dram.Device32Gb)))
	}
	group, err := xfm.NewGroupBackend(
		func(w int) compress.Codec { return compress.NewXDeflateWindow(w) },
		1<<28, drivers, memctrl.SkylakeMapping(4, 2, dram.Device32Gb))
	if err != nil {
		t.Fatal(err)
	}
	traced := sfm.NewTracingBackend(group)
	heap := sfm.NewHeap(traced)
	frame := dataframe.New(heap)

	n := 4096
	vals := make([]int64, n)
	var want int64
	for i := range vals {
		vals[i] = int64(i * 3)
		want += vals[i]
	}
	col, err := frame.AddInt64(0, "v", vals)
	if err != nil {
		t.Fatal(err)
	}

	// Demote, then query through compressed multi-channel far memory.
	if _, err := frame.Demote(dram.Millisecond, "v"); err != nil {
		t.Fatal(err)
	}
	sum, err := col.SumInt64(2 * dram.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if sum != want {
		t.Fatalf("sum through 4-DIMM far memory = %d, want %d", sum, want)
	}

	// The trace must replay cleanly through both encodings.
	var buf bytes.Buffer
	if err := traced.WriteTrace(trace.NewBinaryWriter(&buf)); err != nil {
		t.Fatal(err)
	}
	recs, err := trace.ReadAll(trace.NewBinaryReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	outs, ins := 0, 0
	for _, r := range recs {
		switch r.Op {
		case trace.SwapOut:
			outs++
		case trace.SwapIn, trace.Prefetch:
			ins++
		}
	}
	if outs == 0 || ins == 0 {
		t.Fatalf("trace incomplete: %d outs, %d ins", outs, ins)
	}
	if int64(outs) != group.Stats().SwapOuts {
		t.Errorf("trace outs %d != backend swap-outs %d", outs, group.Stats().SwapOuts)
	}

	// Every DIMM's NMA saw the offloads; advancing time completes them.
	for i, d := range drivers {
		d.AdvanceTo(2 * dram.Second)
		if d.NMAStats().Submitted == 0 {
			t.Errorf("DIMM %d saw no offload requests", i)
		}
	}
}

// TestEndToEndTraceToTimingModel feeds a generated web-front-end trace
// through the DRAM timing model (the cmd/dramsim path) and checks the
// simulator digests it with plausible outputs.
func TestEndToEndTraceToTimingModel(t *testing.T) {
	w := workload.DefaultWebFrontend()
	w.Queries = 800
	res, err := w.Run(sfm.NewCPUBackend(compress.NewLZFast(), 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace")
	}
	ctl := memctrl.NewController(
		memctrl.SkylakeMapping(4, 2, dram.Device32Gb),
		dram.DDR5_3200().WithTRFC(dram.Device32Gb.TRFC))
	var last dram.Ps
	for i, r := range res.Trace {
		kind := dram.Read
		if r.Op == trace.SwapOut {
			kind = dram.Write
		}
		done := ctl.Submit(memctrl.Request{
			Addr: (int64(i) * 4096) % (ctl.Map.TotalBytes() - 4096),
			Size: int(r.Bytes), Kind: kind, At: r.AtPs,
		})
		if done > last {
			last = done
		}
	}
	read, written := ctl.TotalBytes()
	if read == 0 || written == 0 {
		t.Fatalf("timing model moved %d read / %d written bytes", read, written)
	}
	st := ctl.Stream(0)
	if st.MeanLatencyNs() <= 0 {
		t.Error("no latency measured")
	}
}

// TestEndToEndContentionStory checks the three-layer consistency of the
// headline result: the analytic model, the DRAM simulation, and the
// NMA scheduler all agree that XFM removes the swap traffic's cost.
func TestEndToEndContentionStory(t *testing.T) {
	// Layer 1 (analytic): XFM co-run leaves workloads at 1.0.
	if got := experiments.Fig11().Results[contention.XFM].MaxSlowdown(); got > 1.005 {
		t.Errorf("analytic XFM slowdown = %.3f", got)
	}
	// Layer 2 (simulation): removing the SFM stream restores victim
	// latency (checked in memsim tests; here we just confirm the
	// mechanism exists end to end).
	sys := memsim.DefaultSystem()
	victim := memsim.StreamSpec{ID: 1, Name: "victim", Pattern: memsim.Random,
		RateGBps: 4, ReqBytes: 128, Base: 0, Size: 1 << 30, Seed: 1}
	sfmStream := memsim.StreamSpec{ID: 2, Name: "sfm", Pattern: memsim.SwapBursts,
		RateGBps: 4, ReqBytes: 128, Base: 4 << 30, Size: 1 << 30, WriteShare: 0.5, Seed: 2}
	with, err := sys.Run([]memsim.StreamSpec{victim, sfmStream}, dram.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	without, err := sys.Run([]memsim.StreamSpec{victim}, dram.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if with[0].MeanLatencyNs < without[0].MeanLatencyNs {
		t.Error("SFM stream did not cost the victim anything in simulation")
	}
	// Layer 3 (NMA): the side channel absorbs the same traffic with
	// zero fallbacks at the paper's recommended configuration.
	cfg := nma.DefaultConfig(dram.Device32Gb)
	cfg.SPMBytes = 8 << 20
	cfg.AccessesPerTRFC = 3
	cfg.QueueDepth = 16384
	sim := nma.NewSim(cfg)
	tr := workload.PromotionTraffic{
		SFMCapacityGB: 512, PromotionRate: 0.14, Ranks: 10,
		PageBytes: 4096, Groups: 8192, Seed: 3,
		PagesPerGroup: 2, RestartProb: 1.0 / 256,
		DstAheadGroups: 5000, TREFI: cfg.Timings.TREFI,
	}
	windows := 8192
	sim.RunWindows(windows, tr.Stream(dram.Ps(windows)*cfg.Timings.TREFI))
	if rate := sim.Stats().FallbackRate(); rate > 0.001 {
		t.Errorf("NMA fallback rate at the Fig. 11 operating point = %.4f", rate)
	}
}
