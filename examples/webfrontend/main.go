// Webfrontend: the paper's motivating workload (§7) — a DataFrame-style
// analytics service whose column pages live in an AIFM-like far-memory
// heap. The same workload runs over the baseline CPU backend and the
// XFM backend; the example prints the side-by-side swap behavior and
// host cycle savings.
//
// Run with: go run ./examples/webfrontend [-queries N] [-pages N]
package main

import (
	"flag"
	"fmt"
	"log"

	"xfm/internal/compress"
	"xfm/internal/dram"
	"xfm/internal/memctrl"
	"xfm/internal/nma"
	"xfm/internal/sfm"
	"xfm/internal/workload"
	"xfm/internal/xfm"
)

func main() {
	queries := flag.Int("queries", 4000, "queries to run")
	pages := flag.Int("pages", 512, "column pages in the data set")
	flag.Parse()

	w := workload.DefaultWebFrontend()
	w.Queries = *queries
	w.Pages = *pages

	fmt.Printf("web front-end: %d pages (%.1f MiB of columns), %d queries, hot set %.0f%%\n\n",
		w.Pages, float64(w.Pages)*sfm.PageSize/(1<<20), w.Queries, w.HotFraction*100)

	// Baseline: zswap-style CPU backend.
	cpuBackend := sfm.NewCPUBackend(compress.NewXDeflate(), 0)
	cpuRes, err := w.Run(cpuBackend)
	if err != nil {
		log.Fatal(err)
	}

	// XFM: same codec, offloaded through the NMA.
	sim := nma.NewSim(nma.DefaultConfig(dram.Device32Gb))
	driver := xfm.NewDriver(sim)
	xfmBackend, err := xfm.NewBackend(compress.NewXDeflate(), 1<<30,
		driver, memctrl.SkylakeMapping(4, 2, dram.Device32Gb))
	if err != nil {
		log.Fatal(err)
	}
	xfmRes, err := w.Run(xfmBackend)
	if err != nil {
		log.Fatal(err)
	}

	print := func(label string, r workload.Result) {
		fmt.Printf("%-14s swap-outs=%-5d demand-faults=%-5d prefetches=%-5d ratio=%.2f cycles=%.3g\n",
			label, r.BackendStats.SwapOuts, r.HeapStats.DemandFaults,
			r.HeapStats.PrefetchedPages, r.BackendStats.CompressionRatio(),
			r.BackendStats.CPUCycles)
	}
	print("CPU backend:", cpuRes)
	print("XFM backend:", xfmRes)

	bs := xfmRes.BackendStats
	fmt.Printf("\nXFM offloaded %d of %d operations (%.1f%%); host cycles cut by %.1f%%\n",
		bs.Offloads, bs.Offloads+bs.Fallbacks,
		float64(bs.Offloads)/float64(bs.Offloads+bs.Fallbacks)*100,
		(1-bs.CPUCycles/cpuRes.BackendStats.CPUCycles)*100)
	ns := driver.NMAStats()
	fmt.Printf("NMA: %d completed, conditional share %.1f%%, max SPM occupancy %d KiB\n",
		ns.Completed, ns.ConditionalFraction()*100, ns.MaxSPMOccupancy>>10)
	fmt.Printf("observed promotion rate: %.1f%% of far memory accessed\n", xfmRes.PromotionRate*100)
	fmt.Printf("trace: %d swap events over %.1f ms of simulated time\n",
		len(xfmRes.Trace), float64(xfmRes.Duration)/float64(dram.Millisecond))
}
