// Contention: the Fig. 11 scenario as a library-use example — eight
// memory-intensive workloads co-run with SFM swap traffic under the
// three implementations (Baseline-CPU, Host-Lockout-NMA, XFM), sweeping
// the promotion rate.
//
// Run with: go run ./examples/contention
package main

import (
	"fmt"

	"xfm/internal/contention"
	"xfm/internal/workload"
)

func main() {
	sys := contention.DefaultSystem()
	profiles := workload.SPECLikeProfiles()

	fmt.Printf("co-run: %d workloads on a %d-channel system (%.0f GB/s peak), 512 GB SFM\n\n",
		len(profiles), sys.Channels, float64(sys.Channels)*sys.ChannelGBps)

	fmt.Printf("%-10s %-16s %-16s %-16s %s\n",
		"promotion", "Baseline max", "Lockout max", "XFM max", "SFM throughput (baseline)")
	for _, rate := range []float64{0.05, 0.14, 0.25, 0.50, 1.00} {
		traffic := contention.SFMTraffic{
			SwapGBps:         512 * rate / 60,
			CompressionRatio: 2.0,
		}
		var line [3]contention.Result
		for i, m := range contention.Modes() {
			r, err := contention.CoRun(sys, profiles, traffic, m)
			if err != nil {
				panic(err)
			}
			line[i] = r
		}
		fmt.Printf("%-10s %-16s %-16s %-16s %.3f\n",
			fmt.Sprintf("%.0f%%", rate*100),
			fmt.Sprintf("%.3f", line[0].MaxSlowdown()),
			fmt.Sprintf("%.3f", line[1].MaxSlowdown()),
			fmt.Sprintf("%.3f", line[2].MaxSlowdown()),
			line[0].SFMThroughputFactor)
	}

	fmt.Println()
	fmt.Println("per-workload detail at 14% promotion (the paper's Fig. 11 point):")
	traffic := contention.SFMTraffic{SwapGBps: 512 * 0.14 / 60, CompressionRatio: 2.0}
	var results []contention.Result
	for _, m := range contention.Modes() {
		r, _ := contention.CoRun(sys, profiles, traffic, m)
		results = append(results, r)
	}
	fmt.Printf("%-16s %-12s %-18s %s\n", "workload", "Baseline", "Host-Lockout", "XFM")
	for i, p := range profiles {
		fmt.Printf("%-16s %-12.3f %-18.3f %.3f\n",
			p.Name, results[0].Slowdowns[i], results[1].Slowdowns[i], results[2].Slowdowns[i])
	}
}
