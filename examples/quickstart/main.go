// Quickstart: allocate pages in a far-memory heap backed by XFM, push
// cold pages into compressed far memory, touch them back in, and print
// what the near-memory accelerator did.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"xfm/internal/compress"
	"xfm/internal/dram"
	"xfm/internal/memctrl"
	"xfm/internal/nma"
	"xfm/internal/sfm"
	"xfm/internal/xfm"
)

func main() {
	// 1. Model one rank of 32 Gb DDR5 devices with a 2 MB scratchpad
	//    NMA in the DIMM buffer (the paper's prototype shape).
	sim := nma.NewSim(nma.DefaultConfig(dram.Device32Gb))
	driver := xfm.NewDriver(sim)

	// 2. Build the XFM backend: xdeflate compression into a 1 GiB SFM
	//    region, refresh groups derived from a Skylake-style mapping.
	mapping := memctrl.SkylakeMapping(4, 2, dram.Device32Gb)
	backend, err := xfm.NewBackend(compress.NewXDeflate(), 1<<30, driver, mapping)
	if err != nil {
		log.Fatal(err)
	}

	// 3. An application-integrated far-memory heap over that backend.
	heap := sfm.NewHeap(backend)

	// Allocate 64 pages of compressible data.
	var ids []sfm.PageID
	for i := 0; i < 64; i++ {
		data := []byte(fmt.Sprintf("record %04d: status=ok retries=0 payload=............\n", i))
		ids = append(ids, heap.Alloc(0, data))
	}

	// 4. Demote every page: each swap-out is offloaded to the NMA,
	//    which reads it during a DRAM refresh window.
	now := dram.Ps(0)
	for _, id := range ids {
		now += 10 * dram.Microsecond
		if err := heap.SwapOut(now, id); err != nil {
			log.Fatal(err)
		}
	}
	demoted := backend.Stats()
	fmt.Printf("demoted %d pages into far memory (compression ratio %.2f)\n",
		len(ids), demoted.CompressionRatio())

	// 5. Touch half of them back (demand faults: CPU decompression),
	//    prefetch the other half (offloaded to the NMA).
	now += dram.Millisecond
	for i, id := range ids {
		now += 10 * dram.Microsecond
		if i%2 == 0 {
			if _, err := heap.Touch(now, id); err != nil {
				log.Fatal(err)
			}
		} else {
			if err := heap.Prefetch(now, id); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Let simulated time advance so in-flight offloads complete.
	driver.AdvanceTo(now + 100*dram.Millisecond)

	// 6. Report.
	hs := heap.Stats()
	bs := backend.Stats()
	ns := driver.NMAStats()
	fmt.Printf("heap: %d resident, %d demand faults, %d prefetches\n",
		hs.ResidentPages, hs.DemandFaults, hs.PrefetchedPages)
	fmt.Printf("backend: %d swap-outs, %d swap-ins\n", bs.SwapOuts, bs.SwapIns)
	fmt.Printf("offloads: %d to NMA, %d CPU fallbacks, %.3g host cycles\n",
		bs.Offloads, bs.Fallbacks, bs.CPUCycles)
	fmt.Printf("NMA: %d ops completed, %.0f%% conditional accesses, mean latency %.2f ms\n",
		ns.Completed, ns.ConditionalFraction()*100, ns.MeanLatencyMs())
	reads, writes, ioctls := driver.MMIOStats()
	fmt.Printf("driver: %d MMIO reads, %d MMIO writes, %d ioctls\n", reads, writes, ioctls)
}
