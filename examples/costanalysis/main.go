// Costanalysis: the Fig. 3 scenario as a library-use example — when
// does software-defined far memory beat buying disaggregated DRAM or
// PMem, in dollars and in carbon?
//
// Run with: go run ./examples/costanalysis
package main

import (
	"fmt"

	"xfm/internal/costmodel"
)

func main() {
	p := costmodel.DefaultParams() // 512 GB tier

	fmt.Println("DFM vs SFM break-even analysis (512 GB far-memory tier)")
	fmt.Println()

	for _, rate := range []float64{0.05, 0.15, 0.20, 0.50, 1.00} {
		p.PromotionRate = rate
		fmt.Printf("promotion %3.0f%% (%6.1f GB/min swapped, %4.1f%% of a socket busy):\n",
			rate*100, p.GBSwappedPerMin(), p.CPUNeededFraction()*100)
		for _, tech := range []costmodel.MemoryTech{costmodel.DRAM, costmodel.PMem} {
			costMsg := "never within 20y"
			if y, ok := p.CostBreakEvenYears(tech, 20); ok {
				costMsg = fmt.Sprintf("%.1f years", y)
			}
			emMsg := "never within 20y"
			if y, ok := p.EmissionBreakEvenYears(tech, 20); ok {
				emMsg = fmt.Sprintf("%.1f years", y)
			}
			fmt.Printf("  vs %-4s DFM: cost break-even %-18s emissions break-even %s\n",
				tech, costMsg, emMsg)
		}
		fmt.Println()
	}

	p.PromotionRate = 0.20
	fmt.Printf("5-year totals at 20%% promotion:\n")
	fmt.Printf("  SFM:       $%7.0f, %7.0f kgCO2eq\n", p.SFMCost(5), p.SFMEmission(5))
	fmt.Printf("  DRAM DFM:  $%7.0f, %7.0f kgCO2eq\n",
		p.DFMCost(costmodel.DRAM, 5), p.DFMEmission(costmodel.DRAM, 5))
	fmt.Printf("  PMem DFM:  $%7.0f, %7.0f kgCO2eq\n",
		p.DFMCost(costmodel.PMem, 5), p.DFMEmission(costmodel.PMem, 5))
	fmt.Println()
	fmt.Printf("an integrated compression accelerator pays off above %.1f%% promotion (§3.2)\n",
		p.AcceleratorBeneficialPromotion()*100)
}
