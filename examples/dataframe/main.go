// Dataframe: the paper's motivating application as a real program — a
// column-store analytics service whose tables live in a far-memory
// heap backed by XFM. Cold tables compress into the SFM region; a
// query on a cold table either faults its pages back (CPU path) or
// prefetches them through the NMA.
//
// Run with: go run ./examples/dataframe
package main

import (
	"fmt"
	"log"
	"math/rand"

	"xfm/internal/compress"
	"xfm/internal/dataframe"
	"xfm/internal/dram"
	"xfm/internal/memctrl"
	"xfm/internal/nma"
	"xfm/internal/sfm"
	"xfm/internal/xfm"
)

func main() {
	// Far-memory heap over an XFM backend.
	sim := nma.NewSim(nma.DefaultConfig(dram.Device32Gb))
	driver := xfm.NewDriver(sim)
	backend, err := xfm.NewBackend(compress.NewXDeflate(), 1<<30,
		driver, memctrl.SkylakeMapping(4, 2, dram.Device32Gb))
	if err != nil {
		log.Fatal(err)
	}
	heap := sfm.NewHeap(backend)
	frame := dataframe.New(heap)

	// A requests table: 100k rows of (region, latency_ms, bytes).
	const rows = 100_000
	rng := rand.New(rand.NewSource(1))
	regions := make([]int64, rows)
	latencies := make([]float64, rows)
	sizes := make([]int64, rows)
	for i := 0; i < rows; i++ {
		regions[i] = int64(rng.Intn(8))
		latencies[i] = rng.ExpFloat64() * 20
		sizes[i] = int64(rng.Intn(1 << 16))
	}
	now := dram.Ps(0)
	if _, err := frame.AddInt64(now, "region", regions); err != nil {
		log.Fatal(err)
	}
	if _, err := frame.AddFloat64(now, "latency_ms", latencies); err != nil {
		log.Fatal(err)
	}
	if _, err := frame.AddInt64(now, "bytes", sizes); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("table: %d rows, %d columns (%d far-memory pages)\n",
		frame.Rows(), len(frame.Columns()), rows*3/512+3)

	// Query 1 on hot data.
	latCol, _ := frame.Column("latency_ms")
	mean, _ := latCol.MeanFloat64(now)
	fmt.Printf("mean latency (hot): %.2f ms\n", mean)

	// The table goes cold: demote every column into compressed far
	// memory.
	now += 100 * dram.Millisecond
	total := 0
	for _, name := range []string{"region", "latency_ms", "bytes"} {
		n, err := frame.Demote(now, name)
		if err != nil {
			log.Fatal(err)
		}
		total += n
	}
	bs := backend.Stats()
	fmt.Printf("demoted %d pages; compression ratio %.2f; %d offloaded to NMA\n",
		total, bs.CompressionRatio(), bs.Offloads)

	// Query 2 arrives later: prefetch the needed columns (offloaded,
	// predictable pattern) and run a group-by.
	now += 500 * dram.Millisecond
	p1, _ := frame.PrefetchColumn(now, "region")
	p2, _ := frame.PrefetchColumn(now, "bytes")
	now += 50 * dram.Millisecond
	groups, err := frame.GroupSumInt64(now, "region", "bytes")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prefetched %d pages ahead of the group-by\n", p1+p2)
	for r := int64(0); r < 8; r++ {
		fmt.Printf("  region %d: %d bytes served\n", r, groups[r])
	}

	hs := heap.Stats()
	bs = backend.Stats()
	ns := driver.NMAStats()
	fmt.Printf("\nheap: %d demand faults, %d prefetched pages\n",
		hs.DemandFaults, hs.PrefetchedPages)
	fmt.Printf("backend: %d offloads, %d CPU fallbacks (%.3g host cycles)\n",
		bs.Offloads, bs.Fallbacks, bs.CPUCycles)
	fmt.Printf("NMA: %d ops, %.0f%% conditional\n", ns.Completed, ns.ConditionalFraction()*100)
}
